#include "multigrid/mult.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/timer.hpp"

namespace asyncmg {

MultiplicativeMg::MultiplicativeMg(const MgSetup& setup, bool symmetric,
                                   int pre_sweeps, int post_sweeps, int gamma)
    : s_(&setup),
      be_(&setup.backend()),
      symmetric_(symmetric),
      pre_sweeps_(pre_sweeps),
      post_sweeps_(post_sweeps),
      gamma_(gamma),
      fused_(setup.options().engine.fused),
      active_(setup.num_levels()),
      ws_(setup, setup.options().engine.first_touch) {
  if (pre_sweeps < 0 || post_sweeps < 0 || pre_sweeps + post_sweeps == 0) {
    throw std::invalid_argument(
        "MultiplicativeMg: need nonnegative sweep counts, at least one");
  }
  if (gamma < 1) {
    throw std::invalid_argument("MultiplicativeMg: gamma must be >= 1");
  }
}

void MultiplicativeMg::set_telemetry(TelemetrySink* sink, std::size_t tid) {
  tel_ = sink;
  tel_tid_ = tid;
  if (sink != nullptr) {
    ctr_bytes_ = &sink->metrics().counter("kernel.bytes_moved");
    ctr_sweeps_ = &sink->metrics().counter("kernel.fused_sweeps");
    // Tag the kernel backend once per attach; the scalar oracle emits
    // nothing, keeping the golden trace fixtures byte-identical.
    if (be_->kind() != BackendKind::kScalar) {
      sink->record(tid, EventKind::kBackendSelect,
                   static_cast<std::int64_t>(be_->kind()),
                   static_cast<std::int64_t>(s_->options().engine.backend));
    }
    // Tag reduced-precision levels once per attach. All-fp64 setups emit
    // nothing, keeping the golden trace fixtures byte-identical.
    for (std::size_t k = 0; k < s_->num_levels(); ++k) {
      const Precision p = s_->a(k).precision();
      if (p != Precision::kF64) {
        sink->record(tid, EventKind::kLevelPrecision,
                     static_cast<std::int64_t>(k),
                     static_cast<std::int64_t>(p));
      }
    }
  } else {
    ctr_bytes_ = nullptr;
    ctr_sweeps_ = nullptr;
  }
}

void MultiplicativeMg::phase_mark(EventKind kind, CyclePhase phase,
                                  std::size_t level) {
  tel_->record(tel_tid_, kind, static_cast<std::int64_t>(phase),
               static_cast<std::int64_t>(level));
}

void MultiplicativeMg::sweep_level(std::size_t k, const Vector& b, Vector& x) {
  const Smoother& sm = s_->smoother(k);
  const SellMatrix* sell = s_->sell(k);
  if (sell != nullptr) {
    // The setup heuristic only builds SELL for diagonal-type smoothers, so
    // the fused Jacobi sweep applies; swap brings the new iterate into x.
    be_->sell_diag_sweep(*sell, sm.inv_diag(), b, x, ws_.swp(k),
                         /*parallel=*/true);
    x.swap(ws_.swp(k));
  } else {
    sm.sweep_ws(b, x, ws_.swp(k));
  }
  if (tel_ != nullptr) {
    ctr_sweeps_->add(1);
    ctr_bytes_->add(sell != nullptr ? sell_pass_bytes(*sell)
                                    : csr_pass_bytes(s_->a(k)));
  }
}

void MultiplicativeMg::coarse_corrections(std::size_t k) {
  Vector& r = ws_.r(k);
  Vector& e = ws_.e(k);
  const SellMatrix* sell = s_->sell(k);
  for (int g = 0; g < gamma_; ++g) {
    pb(CyclePhase::kRestrict, k);
    // tmp = r_k - A_k e_k in one pass over A (spmv accumulation order),
    // then restrict through the stored P^T with a row-parallel SpMV --
    // entry-for-entry the same additions as spmv_transpose, without its
    // scatter writes.
    if (sell != nullptr) {
      be_->sell_sub_spmv(*sell, r, e, ws_.tmp(k), /*parallel=*/true);
    } else {
      be_->csr_sub_spmv(s_->a(k), r, e, ws_.tmp(k), /*parallel=*/true);
    }
    be_->restrict_apply(s_->r(k), ws_.tmp(k), ws_.r(k + 1), /*parallel=*/true);
    pe(CyclePhase::kRestrict, k);
    if (tel_ != nullptr) {
      ctr_bytes_->add((sell != nullptr ? sell_pass_bytes(*sell)
                                       : csr_pass_bytes(s_->a(k))) +
                      csr_pass_bytes(s_->r(k)));
    }
    level_solve(k + 1);
    pb(CyclePhase::kProlong, k);
    // e_k += P e_{k+1}
    be_->prolong_add(s_->p(k), ws_.e(k + 1), e, /*parallel=*/true);
    pe(CyclePhase::kProlong, k);
    if (tel_ != nullptr) ctr_bytes_->add(csr_pass_bytes(s_->p(k)));
  }
}

void MultiplicativeMg::set_active_levels(std::size_t n) {
  if (n < 1 || n > s_->num_levels()) {
    throw std::invalid_argument("set_active_levels: out of range");
  }
  active_ = n;
}

void MultiplicativeMg::level_solve(std::size_t k) {
  const std::size_t coarsest = active_ - 1;
  if (k == coarsest) {
    // Exact solve when available, a smoothing sweep otherwise. A truncated
    // cycle's temporary coarsest never owns the LU, so it smooths.
    pb(CyclePhase::kCoarseSolve, k);
    if (active_ == s_->num_levels() && !s_->coarse_solver().empty()) {
      s_->coarse_solver().solve(ws_.r(k), ws_.e(k));
    } else {
      s_->smoother(k).apply_zero(ws_.r(k), ws_.e(k));
    }
    pe(CyclePhase::kCoarseSolve, k);
    return;
  }
  if (!fused_) {
    level_solve_reference(k);
    return;
  }

  Vector& r = ws_.r(k);
  Vector& e = ws_.e(k);

  // Pre-smooth from a zero initial guess.
  pb(CyclePhase::kPreSmooth, k);
  if (pre_sweeps_ == 0) {
    fill(e, 0.0);
  } else {
    s_->smoother(k).apply_zero(r, e);
    for (int s = 1; s < pre_sweeps_; ++s) sweep_level(k, r, e);
  }
  pe(CyclePhase::kPreSmooth, k);

  coarse_corrections(k);

  // Post-smooth. For SELL levels the smoother is diagonal, so the
  // transposed sweep coincides with the plain one and the fused kernel
  // covers the symmetric cycle too.
  pb(CyclePhase::kPostSmooth, k);
  for (int s = 0; s < post_sweeps_; ++s) {
    if (symmetric_ && s_->sell(k) == nullptr) {
      s_->smoother(k).sweep_transpose_ws(r, e, ws_.swp(k), ws_.tmp(k));
    } else {
      sweep_level(k, r, e);
    }
  }
  pe(CyclePhase::kPostSmooth, k);
}

void MultiplicativeMg::level_solve_reference(std::size_t k) {
  // The original two-pass path: separate spmv/subtract/restrict and
  // allocating smoother sweeps. Kept verbatim as the bitwise oracle for the
  // fused path and as the bench baseline (set_fused(false)).
  Vector& r = ws_.r(k);
  Vector& e = ws_.e(k);
  Vector& tmp = ws_.tmp(k);

  pb(CyclePhase::kPreSmooth, k);
  if (pre_sweeps_ == 0) {
    fill(e, 0.0);
  } else {
    s_->smoother(k).smooth_zero(r, e, pre_sweeps_);
  }
  pe(CyclePhase::kPreSmooth, k);

  for (int g = 0; g < gamma_; ++g) {
    pb(CyclePhase::kRestrict, k);
    s_->a(k).spmv(e, tmp);  // tmp = A_k e_k
    for (std::size_t i = 0; i < tmp.size(); ++i) {
      tmp[i] = r[i] - tmp[i];
    }
    s_->p(k).spmv_transpose(tmp, ws_.r(k + 1));  // r_{k+1} = P^T (r_k - A e_k)
    pe(CyclePhase::kRestrict, k);
    level_solve(k + 1);
    pb(CyclePhase::kProlong, k);
    s_->p(k).spmv(ws_.e(k + 1), tmp);
    axpy(1.0, tmp, e);  // e_k += P e_{k+1}
    pe(CyclePhase::kProlong, k);
  }

  pb(CyclePhase::kPostSmooth, k);
  for (int s = 0; s < post_sweeps_; ++s) {
    if (symmetric_) {
      s_->smoother(k).sweep_transpose(r, e);
    } else {
      s_->smoother(k).sweep(r, e);  // e_k += M^{-1}(r_k - A e_k)
    }
  }
  pe(CyclePhase::kPostSmooth, k);
}

void MultiplicativeMg::cycle(const Vector& b, Vector& x) {
  if (tel_ != nullptr && !tel_->enabled()) {
    // Drop to the zero-overhead path for the whole cycle.
    TelemetrySink* const saved = tel_;
    tel_ = nullptr;
    cycle(b, x);
    tel_ = saved;
    return;
  }
  pb(CyclePhase::kResidual, 0);
  if (fused_) {
    if (s_->sell(0) != nullptr) {
      be_->sell_residual(*s_->sell(0), b, x, ws_.r(0), /*parallel=*/true);
    } else {
      be_->csr_residual(s_->a(0), b, x, ws_.r(0), /*parallel=*/true);
    }
  } else {
    s_->a(0).residual(b, x, ws_.r(0));
  }
  pe(CyclePhase::kResidual, 0);
  level_solve(0);
  be_->axpy(1.0, ws_.e(0), x);
}

SolveStats MultiplicativeMg::solve(const Vector& b, Vector& x, int t_max,
                                   double tol) {
  SolveStats stats;
  Timer timer;
  const double bnorm = norm2(b);
  const double scale = bnorm > 0.0 ? 1.0 / bnorm : 1.0;
  // tmp(0) is free between cycles; the fused residual+norm makes the
  // convergence check a single pass over A_0.
  Vector& r = ws_.tmp(0);
  const auto rel_res = [&]() {
    if (fused_) {
      return std::sqrt(be_->csr_residual_norm_sq(s_->a(0), b, x, r,
                                                 /*parallel=*/true)) *
             scale;
    }
    s_->a(0).residual(b, x, r);
    return norm2(r) * scale;
  };
  stats.rel_res_history.push_back(rel_res());
  for (int t = 0; t < t_max; ++t) {
    cycle(b, x);
    ++stats.cycles;
    const double rr = rel_res();
    stats.rel_res_history.push_back(rr);
    if (tol > 0.0 && rr < tol) {
      stats.converged = true;
      break;
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace asyncmg
