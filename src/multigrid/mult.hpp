#pragma once
// Classical multiplicative V(1,1)-multigrid (Algorithm 1 of the paper),
// the "Mult" baseline of every experiment. Optionally post-smooths with
// M^T, which makes the cycle symmetric and mathematically equivalent to
// Multadd with the symmetrized smoother (Section II-B1).

#include <cstddef>

#include "multigrid/setup.hpp"
#include "multigrid/solve_stats.hpp"
#include "multigrid/workspace.hpp"
#include "telemetry/events.hpp"

namespace asyncmg {

class Counter;
class TelemetrySink;

class MultiplicativeMg {
 public:
  /// `symmetric` selects G^T (transposed-smoother) post-smoothing.
  /// `pre_sweeps`/`post_sweeps` generalize to V(s1,s2)-cycles (the paper
  /// uses V(1,1) throughout); `gamma` selects the cycle shape (1 = V-cycle,
  /// 2 = W-cycle, ...).
  explicit MultiplicativeMg(const MgSetup& setup, bool symmetric = false,
                            int pre_sweeps = 1, int post_sweeps = 1,
                            int gamma = 1);

  /// One V(1,1)-cycle: x is corrected in place using right-hand side b.
  void cycle(const Vector& b, Vector& x);

  /// Runs `t_max` cycles (or until ||r||/||b|| < tol when tol > 0),
  /// recording the residual history.
  SolveStats solve(const Vector& b, Vector& x, int t_max, double tol = 0.0);

  /// Attach a telemetry sink: cycle phases (residual, smooths, transfers,
  /// coarse solve) are recorded as begin/end events on ring `tid`, and the
  /// kernel engine's bytes-moved / sweep counters are bound to the sink's
  /// metrics registry. nullptr detaches. Not owned; must outlive this
  /// object's cycle() calls.
  void set_telemetry(TelemetrySink* sink, std::size_t tid = 0);

  /// Toggle the fused kernel engine for this instance (initialized from the
  /// setup's engine options). `false` restores the original two-pass,
  /// allocating reference path — the bench baseline and the bitwise oracle
  /// of the property tests.
  void set_fused(bool fused) { fused_ = fused; }
  bool fused() const { return fused_; }

  /// Truncate the cycle at the first `n` levels (1 <= n <= num_levels):
  /// level n-1 acts as a temporary coarsest, solved with its smoother's
  /// zero-guess apply (the dense LU only ever belongs to the true coarsest
  /// level). The background setup pipeline deepens this as coarse levels
  /// finish; n = num_levels restores the full cycle.
  void set_active_levels(std::size_t n);
  std::size_t active_levels() const { return active_; }

  /// The per-instance scratch arena (sizing diagnostics).
  const CycleWorkspace& workspace() const { return ws_; }

 private:
  /// Recursive multigrid on the error equation A_k e_k = r_k; reads
  /// ws_.r(k), leaves the correction in ws_.e(k).
  void level_solve(std::size_t k);
  /// Reference (unfused, allocating smoother calls) body of level_solve.
  void level_solve_reference(std::size_t k);
  /// One post-smoothing-style sweep on A_k x = b through the fastest
  /// bit-identical kernel for the level: SELL fused sweep, CSR fused sweep,
  /// or the smoother's workspace sweep for non-diagonal types.
  void sweep_level(std::size_t k, const Vector& b, Vector& x);
  /// gamma coarse-grid corrections of the fused path (restrict, recurse,
  /// prolong-add).
  void coarse_corrections(std::size_t k);

  // Out-of-line so mult.hpp doesn't drag in the sink; the inline wrappers
  // keep the detached case to one branch per phase.
  void phase_mark(EventKind kind, CyclePhase phase, std::size_t level);
  void pb(CyclePhase p, std::size_t lvl) {
    if (tel_ != nullptr) phase_mark(EventKind::kPhaseBegin, p, lvl);
  }
  void pe(CyclePhase p, std::size_t lvl) {
    if (tel_ != nullptr) phase_mark(EventKind::kPhaseEnd, p, lvl);
  }

  TelemetrySink* tel_ = nullptr;
  std::size_t tel_tid_ = 0;
  // Kernel-engine counters, bound once in set_telemetry so the cycle loop
  // never touches the registry map (handles are stable and lock-free).
  Counter* ctr_bytes_ = nullptr;
  Counter* ctr_sweeps_ = nullptr;
  const MgSetup* s_;
  // Resolved kernel backend, cached off the setup so the cycle's inner
  // loops pay one indirect call per kernel, not a setup hop too.
  const KernelBackend* be_;
  bool symmetric_;
  int pre_sweeps_;
  int post_sweeps_;
  int gamma_ = 1;
  bool fused_;
  std::size_t active_;  // cycle depth; num_levels unless truncated
  // Per-level scratch arena reused across cycles (no allocations inside a
  // cycle, even on the reference path's vectors).
  CycleWorkspace ws_;
};

}  // namespace asyncmg
