#pragma once
// Classical multiplicative V(1,1)-multigrid (Algorithm 1 of the paper),
// the "Mult" baseline of every experiment. Optionally post-smooths with
// M^T, which makes the cycle symmetric and mathematically equivalent to
// Multadd with the symmetrized smoother (Section II-B1).

#include "multigrid/setup.hpp"
#include "multigrid/solve_stats.hpp"

namespace asyncmg {

class MultiplicativeMg {
 public:
  /// `symmetric` selects G^T (transposed-smoother) post-smoothing.
  /// `pre_sweeps`/`post_sweeps` generalize to V(s1,s2)-cycles (the paper
  /// uses V(1,1) throughout); `gamma` selects the cycle shape (1 = V-cycle,
  /// 2 = W-cycle, ...).
  explicit MultiplicativeMg(const MgSetup& setup, bool symmetric = false,
                            int pre_sweeps = 1, int post_sweeps = 1,
                            int gamma = 1);

  /// One V(1,1)-cycle: x is corrected in place using right-hand side b.
  void cycle(const Vector& b, Vector& x);

  /// Runs `t_max` cycles (or until ||r||/||b|| < tol when tol > 0),
  /// recording the residual history.
  SolveStats solve(const Vector& b, Vector& x, int t_max, double tol = 0.0);

 private:
  /// Recursive multigrid on the error equation A_k e_k = r_k; reads r_[k],
  /// leaves the correction in e_[k].
  void level_solve(std::size_t k);

  const MgSetup* s_;
  bool symmetric_;
  int pre_sweeps_;
  int post_sweeps_;
  int gamma_ = 1;
  // Per-level workspaces reused across cycles.
  std::vector<Vector> r_, e_, tmp_;
};

}  // namespace asyncmg
