#pragma once
// Classical multiplicative V(1,1)-multigrid (Algorithm 1 of the paper),
// the "Mult" baseline of every experiment. Optionally post-smooths with
// M^T, which makes the cycle symmetric and mathematically equivalent to
// Multadd with the symmetrized smoother (Section II-B1).

#include <cstddef>

#include "multigrid/setup.hpp"
#include "multigrid/solve_stats.hpp"
#include "telemetry/events.hpp"

namespace asyncmg {

class TelemetrySink;

class MultiplicativeMg {
 public:
  /// `symmetric` selects G^T (transposed-smoother) post-smoothing.
  /// `pre_sweeps`/`post_sweeps` generalize to V(s1,s2)-cycles (the paper
  /// uses V(1,1) throughout); `gamma` selects the cycle shape (1 = V-cycle,
  /// 2 = W-cycle, ...).
  explicit MultiplicativeMg(const MgSetup& setup, bool symmetric = false,
                            int pre_sweeps = 1, int post_sweeps = 1,
                            int gamma = 1);

  /// One V(1,1)-cycle: x is corrected in place using right-hand side b.
  void cycle(const Vector& b, Vector& x);

  /// Runs `t_max` cycles (or until ||r||/||b|| < tol when tol > 0),
  /// recording the residual history.
  SolveStats solve(const Vector& b, Vector& x, int t_max, double tol = 0.0);

  /// Attach a telemetry sink: cycle phases (residual, smooths, transfers,
  /// coarse solve) are recorded as begin/end events on ring `tid`. nullptr
  /// detaches. Not owned; must outlive this object's cycle() calls.
  void set_telemetry(TelemetrySink* sink, std::size_t tid = 0) {
    tel_ = sink;
    tel_tid_ = tid;
  }

 private:
  /// Recursive multigrid on the error equation A_k e_k = r_k; reads r_[k],
  /// leaves the correction in e_[k].
  void level_solve(std::size_t k);

  // Out-of-line so mult.hpp doesn't drag in the sink; the inline wrappers
  // keep the detached case to one branch per phase.
  void phase_mark(EventKind kind, CyclePhase phase, std::size_t level);
  void pb(CyclePhase p, std::size_t lvl) {
    if (tel_ != nullptr) phase_mark(EventKind::kPhaseBegin, p, lvl);
  }
  void pe(CyclePhase p, std::size_t lvl) {
    if (tel_ != nullptr) phase_mark(EventKind::kPhaseEnd, p, lvl);
  }

  TelemetrySink* tel_ = nullptr;
  std::size_t tel_tid_ = 0;
  const MgSetup* s_;
  bool symmetric_;
  int pre_sweeps_;
  int post_sweeps_;
  int gamma_ = 1;
  // Per-level workspaces reused across cycles.
  std::vector<Vector> r_, e_, tmp_;
};

}  // namespace asyncmg
