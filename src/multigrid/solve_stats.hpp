#pragma once
// Result bundle returned by every solver driver.

#include <vector>

#include "sparse/types.hpp"

namespace asyncmg {

struct SolveStats {
  /// Relative residual 2-norms ||b - Ax||/||b||; entry 0 is the initial
  /// residual, entry t is after cycle t.
  std::vector<double> rel_res_history;
  /// Cycles actually carried out.
  int cycles = 0;
  /// True when the final relative residual fell below the requested
  /// tolerance (always false when tol <= 0: no tolerance checking).
  bool converged = false;
  /// Wall-clock seconds of the solve loop (excludes setup).
  double seconds = 0.0;

  double final_rel_res() const {
    return rel_res_history.empty() ? 1.0 : rel_res_history.back();
  }
};

}  // namespace asyncmg
