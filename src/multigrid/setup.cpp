#include "multigrid/setup.hpp"

namespace asyncmg {

MgSetup::MgSetup(CsrMatrix a_fine, MgOptions opts)
    : opts_(opts), h_(Hierarchy::build(std::move(a_fine), opts.amg)) {
  init();
}

MgSetup::MgSetup(Hierarchy hierarchy, MgOptions opts)
    : opts_(opts), h_(std::move(hierarchy)) {
  init();
}

void MgSetup::init() {
  const std::size_t nl = h_.num_levels();

  // Resolve the kernel backend before anything that runs kernels is built,
  // so the smoothers (and every solver later attached to this setup) agree
  // on one implementation for the whole solve.
  backend_ = &resolve_backend(opts_.engine);

  smoothers_.reserve(nl);
  for (std::size_t k = 0; k < nl; ++k) {
    smoothers_.push_back(
        std::make_unique<Smoother>(h_.matrix(k), opts_.smoother));
    smoothers_.back()->set_backend(backend_);
  }

  // Per-level format selection for the solve-phase kernel engine: SELL
  // levels carry a second (immutable) copy of A_k that the fused diagonal
  // sweeps and residuals stream instead of the CSR form.
  const bool diag_smoother =
      opts_.smoother.type == SmootherType::kWeightedJacobi ||
      opts_.smoother.type == SmootherType::kL1Jacobi;
  sell_.resize(nl);
  for (std::size_t k = 0; k < nl; ++k) {
    if (level_prefers_sell(opts_.engine, h_.matrix(k).rows(), diag_smoother,
                           k + 1 == nl)) {
      sell_[k] = std::make_unique<SellMatrix>(SellMatrix::from_csr(
          h_.matrix(k), opts_.engine.sell_chunk, opts_.engine.sell_sigma));
    }
  }

  // Smoothed interpolants for Multadd, one per non-coarsest level, built
  // from the Jacobi-type iteration matrix of the configured smoother. The
  // SpGEMM chain always produces fp64; each Pbar is then demoted to match
  // its plain interpolant's stored width (set by the precision policy at
  // hierarchy build), so the additive transfer operators stream the same
  // number of bytes as the multiplicative ones.
  pbar_.reserve(nl > 0 ? nl - 1 : 0);
  for (std::size_t k = 0; k + 1 < nl; ++k) {
    pbar_.push_back(smoothed_interpolant(
        h_.matrix(k), h_.interpolation(k), opts_.smoother.type,
        opts_.smoother.omega, opts_.amg.setup_threads));
    pbar_.back().convert_precision(h_.interpolation(k).precision());
  }

  rt_.reserve(pbar_.size());
  rbart_.reserve(pbar_.size());
  for (std::size_t k = 0; k + 1 < nl; ++k) {
    rt_.push_back(h_.interpolation(k).transpose(opts_.amg.setup_threads));
    rbart_.push_back(pbar_[k].transpose(opts_.amg.setup_threads));
  }

  const CsrMatrix& ac = h_.matrix(nl - 1);
  if (ac.rows() <= opts_.max_dense_coarse) {
    coarse_ = LuSolver(ac);
  }

  // Work model: one grid-k additive correction walks the interpolation
  // chain down and back up (2 nnz flops per SpMV) and smooths once on A_k.
  work_.assign(nl, 0.0);
  for (std::size_t k = 0; k < nl; ++k) {
    double w = 2.0 * static_cast<double>(h_.matrix(k).nnz());  // smoothing
    for (std::size_t j = 0; j < k; ++j) {
      // Restriction (Pbar^T) and prolongation (Pbar) through level j.
      const CsrMatrix& pj = pbar_.empty() ? h_.interpolation(j) : pbar_[j];
      w += 4.0 * static_cast<double>(pj.nnz());
    }
    work_[k] = w;
  }
}

}  // namespace asyncmg
