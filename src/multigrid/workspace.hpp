#pragma once
// Per-hierarchy cycle workspace arena (DESIGN.md section 10).
//
// Every scratch vector a multigrid cycle touches lives here, sized once at
// construction, so the cycling hot path performs zero heap allocations (the
// counting-allocator test in tests/test_kernels.cpp asserts this). Ownership
// rule: one CycleWorkspace per solver instance, never shared across threads
// — a SolverPool lane gets its own because BatchSolver builds one
// MultiplicativeMg per worker slot.

#include <cstddef>
#include <vector>

#include "sparse/types.hpp"

namespace asyncmg {

class MgSetup;

class CycleWorkspace {
 public:
  /// Sizes one r/e/tmp/swp quartet per hierarchy level. With `first_touch`
  /// the buffers are re-written by a parallel OpenMP loop after allocation;
  /// on first-touch NUMA policies this distributes pages across the team
  /// that will run the parallel kernels. (An approximation: std::vector's
  /// value-initialization already touched the pages once, serially, so this
  /// only helps when the OS migrates on re-touch or the vectors were
  /// reserve()-grown; the zero-allocation and fusion wins do not depend on
  /// it.) Pool workers skip the parallel re-touch, like every solve kernel.
  explicit CycleWorkspace(const MgSetup& setup, bool first_touch = true);

  std::size_t num_levels() const { return r_.size(); }

  Vector& r(std::size_t k) { return r_[k]; }
  Vector& e(std::size_t k) { return e_[k]; }
  Vector& tmp(std::size_t k) { return tmp_[k]; }
  /// Ping-pong output buffer for out-of-place fused Jacobi sweeps; swapped
  /// with the iterate after each sweep, so it must stay level-sized.
  Vector& swp(std::size_t k) { return swp_[k]; }

  /// Total bytes held (telemetry / sizing diagnostics).
  std::size_t bytes() const;

 private:
  std::vector<Vector> r_, e_, tmp_, swp_;
};

}  // namespace asyncmg
