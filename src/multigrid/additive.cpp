#include "multigrid/additive.hpp"

#include <stdexcept>

#include "sparse/vec.hpp"
#include "util/timer.hpp"

namespace asyncmg {

std::string additive_kind_name(AdditiveKind k) {
  switch (k) {
    case AdditiveKind::kBpx:
      return "bpx";
    case AdditiveKind::kMultadd:
      return "multadd";
    case AdditiveKind::kAfacx:
      return "afacx";
  }
  return "unknown";
}

AdditiveCorrector::AdditiveCorrector(const MgSetup& setup,
                                     AdditiveOptions opts)
    : s_(&setup), opts_(opts) {
  if (opts_.afacx_s1 < 1 || opts_.afacx_s2 < 1) {
    throw std::invalid_argument("AFACx sweep counts must be >= 1");
  }
}

const CsrMatrix& AdditiveCorrector::interp(std::size_t j) const {
  return opts_.kind == AdditiveKind::kMultadd ? s_->pbar(j) : s_->p(j);
}

void AdditiveCorrector::solve_coarsest(const Vector& r, Vector& e) const {
  const std::size_t coarsest = s_->num_levels() - 1;
  if (!s_->coarse_solver().empty()) {
    s_->coarse_solver().solve(r, e);
  } else {
    s_->smoother(coarsest).apply_zero(r, e);
  }
}

void AdditiveCorrector::correction(std::size_t k, const Vector& r_fine,
                                   Vector& c) const {
  CorrectionScratch ws;
  correction(k, r_fine, c, ws);
}

void AdditiveCorrector::correction(std::size_t k, const Vector& r_fine,
                                   Vector& c, CorrectionScratch& ws) const {
  if (opts_.kind == AdditiveKind::kAfacx) {
    correction_afacx(k, r_fine, c, ws);
  } else {
    correction_chain(k, r_fine, c, ws);
  }
}

void AdditiveCorrector::correction_chain(std::size_t k, const Vector& r_fine,
                                         Vector& c,
                                         CorrectionScratch& ws) const {
  const std::size_t coarsest = s_->num_levels() - 1;
  // Restrict the fine residual down to level k through the method's
  // interpolant chain.
  Vector& r = ws.r;
  Vector& next = ws.next;
  r = r_fine;
  const KernelBackend& be = s_->backend();
  for (std::size_t j = 0; j < k; ++j) {
    be.csr_spmv_transpose(interp(j), r, next);
    r.swap(next);
  }
  // Lambda_k.
  Vector& e = ws.e;
  if (k == coarsest) {
    solve_coarsest(r, e);
  } else if (opts_.symmetrized_lambda) {
    // The chain kinds never touch the AFACx buffers, so they double as the
    // symmetrized application's temporaries (identical results, no
    // allocation once warm).
    s_->smoother(k).apply_symmetrized_ws(r, e, ws.u, ws.pu, ws.apu);
  } else {
    s_->smoother(k).apply_zero(r, e);
  }
  // Prolong back to the fine grid.
  for (std::size_t j = k; j-- > 0;) {
    be.csr_spmv(interp(j), e, next, /*parallel=*/false);
    e.swap(next);
  }
  c.swap(e);  // result moves to c; c's old buffer becomes scratch
}

void AdditiveCorrector::correction_afacx(std::size_t k, const Vector& r_fine,
                                         Vector& c,
                                         CorrectionScratch& ws) const {
  const std::size_t coarsest = s_->num_levels() - 1;
  // Restrict through the plain interpolant chain to level k.
  Vector& r = ws.r;
  Vector& next = ws.next;
  r = r_fine;
  const KernelBackend& be = s_->backend();
  for (std::size_t j = 0; j < k; ++j) {
    be.csr_spmv_transpose(s_->p(j), r, next);
    r.swap(next);
  }

  Vector& e = ws.e;
  if (k == coarsest) {
    // Coarsest grid contributes its (exact) solve directly.
    solve_coarsest(r, e);
  } else {
    // r_{k+1} = P^T r_k, then smooth e_{k+1} from zero (s2 sweeps).
    Vector& r_next = ws.r_next;
    be.csr_spmv_transpose(s_->p(k), r, r_next);
    Vector& u = ws.u;
    if (k + 1 == coarsest && !s_->coarse_solver().empty()) {
      s_->coarse_solver().solve(r_next, u);
    } else {
      s_->smoother(k + 1).smooth_zero_ws(r_next, u, opts_.afacx_s2, ws.swp);
    }
    // Modified right-hand side r_k - A_k P u (Alg. 2 lines 8-9), then
    // smooth e_k from zero (s1 sweeps); the grid-k correction is just
    // P_k^0 e_k, no subtraction needed.
    Vector& pu = ws.pu;
    be.csr_spmv(s_->p(k), u, pu, /*parallel=*/false);
    Vector& apu = ws.apu;
    be.csr_spmv(s_->a(k), pu, apu, /*parallel=*/false);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= apu[i];
    s_->smoother(k).smooth_zero_ws(r, e, opts_.afacx_s1, ws.swp);
  }

  for (std::size_t j = k; j-- > 0;) {
    be.csr_spmv(s_->p(j), e, next, /*parallel=*/false);
    e.swap(next);
  }
  c.swap(e);  // see correction_chain
}

void AdditiveCorrector::accumulate_cycle(const Vector& r, Vector& acc,
                                         std::size_t row_begin,
                                         std::size_t row_end,
                                         CorrectionScratch& ws,
                                         Vector& c) const {
  std::size_t k0 = 0;
  const SmootherType st = s_->smoother(0).type();
  const bool jacobi_fine = opts_.kind != AdditiveKind::kAfacx &&
                           !opts_.symmetrized_lambda && num_grids() > 1 &&
                           (st == SmootherType::kWeightedJacobi ||
                            st == SmootherType::kL1Jacobi);
  if (jacobi_fine) {
    const Vector& d = s_->smoother(0).inv_diag();
    for (std::size_t i = row_begin; i < row_end; ++i) {
      acc[i] += d[i] * r[i];
    }
    k0 = 1;
  }
  for (std::size_t k = k0; k < num_grids(); ++k) {
    correction(k, r, c, ws);
    for (std::size_t i = row_begin; i < row_end; ++i) acc[i] += c[i];
  }
}

std::vector<double> AdditiveCorrector::work() const {
  const std::size_t nl = s_->num_levels();
  std::vector<double> w(nl, 0.0);
  for (std::size_t k = 0; k < nl; ++k) {
    // Chain transport: one restriction + one prolongation per level below k.
    double chain = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      chain += 4.0 * static_cast<double>(interp(j).nnz());
    }
    // Smoothing at level k (AFACx also smooths at k+1 and multiplies by A_k).
    double smooth = 2.0 * static_cast<double>(s_->a(k).nnz());
    if (opts_.kind == AdditiveKind::kAfacx && k + 1 < nl) {
      smooth += 2.0 * static_cast<double>(s_->a(k + 1).nnz()) *
                static_cast<double>(opts_.afacx_s2);
      smooth += 2.0 * static_cast<double>(s_->a(k).nnz()) *
                static_cast<double>(opts_.afacx_s1);
    }
    w[k] = chain + smooth;
  }
  return w;
}

AdditiveMg::AdditiveMg(const MgSetup& setup, AdditiveOptions opts)
    : corrector_(setup, opts) {}

void AdditiveMg::cycle(const Vector& b, Vector& x) {
  const MgSetup& s = corrector_.setup();
  const KernelBackend& be = s.backend();
  be.csr_residual(s.a(0), b, x, r_, /*parallel=*/true);
  for (std::size_t k = 0; k < corrector_.num_grids(); ++k) {
    corrector_.correction(k, r_, c_, ws_);
    be.axpy(1.0, c_, x);
  }
}

SolveStats AdditiveMg::solve(const Vector& b, Vector& x, int t_max,
                             double tol) {
  SolveStats stats;
  Timer timer;
  const MgSetup& s = corrector_.setup();
  const double bnorm = norm2(b);
  const double scale = bnorm > 0.0 ? 1.0 / bnorm : 1.0;
  const KernelBackend& be = s.backend();
  Vector r;
  be.csr_residual(s.a(0), b, x, r, /*parallel=*/true);
  stats.rel_res_history.push_back(norm2(r) * scale);
  for (int t = 0; t < t_max; ++t) {
    cycle(b, x);
    ++stats.cycles;
    be.csr_residual(s.a(0), b, x, r, /*parallel=*/true);
    const double rr = norm2(r) * scale;
    stats.rel_res_history.push_back(rr);
    if (tol > 0.0 && rr < tol) {
      stats.converged = true;
      break;
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace asyncmg
