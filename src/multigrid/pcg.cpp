#include "multigrid/pcg.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "sparse/vec.hpp"
#include "util/timer.hpp"

namespace asyncmg {

SolveStats pcg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond, const PcgOptions& opts) {
  PcgWorkspace ws;
  return pcg_solve(a, b, x, precond, opts, ws);
}

SolveStats pcg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond, const PcgOptions& opts,
                     PcgWorkspace& ws) {
  if (a.rows() != a.cols() ||
      static_cast<std::size_t>(a.rows()) != b.size()) {
    throw std::invalid_argument("pcg_solve: shape mismatch");
  }
  SolveStats stats;
  // Sized up front so the history pushes never reallocate: the iteration
  // itself is then heap-free once the workspace is warm.
  stats.rel_res_history.reserve(static_cast<std::size_t>(opts.max_iterations) +
                                1);
  Timer timer;
  const std::size_t n = b.size();
  x.resize(n, 0.0);

  const double bnorm = norm2(b);
  const double scale = bnorm > 0.0 ? 1.0 / bnorm : 1.0;

  Vector& r = ws.r;
  a.residual_omp(b, x, r);
  stats.rel_res_history.push_back(norm2(r) * scale);

  Vector& z = ws.z;
  z.assign(n, 0.0);
  if (precond) {
    precond(r, z);
  } else {
    z = r;
  }
  Vector& p = ws.p;
  p = z;
  Vector& ap = ws.ap;
  ap.resize(n);
  double rz = dot(r, z);

  for (int it = 0; it < opts.max_iterations; ++it) {
    a.spmv_omp(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) {
      // Loss of positive definiteness (numerically), stop with what we have.
      break;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    ++stats.cycles;

    const double rr = norm2(r) * scale;
    stats.rel_res_history.push_back(rr);
    if (rr < opts.tol) {
      stats.converged = true;
      break;
    }

    if (precond) {
      precond(r, z);
    } else {
      z = r;
    }
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  stats.seconds = timer.seconds();
  return stats;
}

Preconditioner make_mg_preconditioner(const MgSetup& setup,
                                      MgPreconditionerKind kind) {
  switch (kind) {
    case MgPreconditionerKind::kBpx: {
      AdditiveOptions ao;
      ao.kind = AdditiveKind::kBpx;
      auto corr = std::make_shared<AdditiveCorrector>(setup, ao);
      // The lambda owns its correction scratch (the header's "workspaces
      // shared across calls" contract), so repeated applications allocate
      // nothing once the buffers are warm.
      auto ws = std::make_shared<CorrectionScratch>();
      auto c = std::make_shared<Vector>();
      return [corr, ws, c](const Vector& r, Vector& z) {
        z.assign(r.size(), 0.0);
        for (std::size_t k = 0; k < corr->num_grids(); ++k) {
          corr->correction(k, r, *c, *ws);
          axpy(1.0, *c, z);
        }
      };
    }
    case MgPreconditionerKind::kMultaddSymmetrized: {
      AdditiveOptions ao;
      ao.kind = AdditiveKind::kMultadd;
      ao.symmetrized_lambda = true;
      auto corr = std::make_shared<AdditiveCorrector>(setup, ao);
      auto ws = std::make_shared<CorrectionScratch>();
      auto c = std::make_shared<Vector>();
      return [corr, ws, c](const Vector& r, Vector& z) {
        z.assign(r.size(), 0.0);
        for (std::size_t k = 0; k < corr->num_grids(); ++k) {
          corr->correction(k, r, *c, *ws);
          axpy(1.0, *c, z);
        }
      };
    }
    case MgPreconditionerKind::kSymmetricVCycle: {
      auto mg = std::make_shared<MultiplicativeMg>(setup, /*symmetric=*/true);
      return [mg](const Vector& r, Vector& z) {
        z.assign(r.size(), 0.0);
        mg->cycle(r, z);  // one symmetric V(1,1) on A z = r from zero
      };
    }
  }
  throw std::invalid_argument("unknown preconditioner kind");
}

}  // namespace asyncmg
