#pragma once
// Preconditioned conjugate gradients. The paper notes (Section II-B) that
// BPX is normally used as a preconditioner rather than a solver because
// its additive corrections over-correct; PCG is the natural harness for
// that use. Any SPD preconditioner works; `MultigridPreconditioner` wraps
// the library's cycles:
//
//   * BPX or Multadd with the symmetrized smoother (SPD by construction);
//   * a symmetric multiplicative V(1,1)-cycle.

#include <functional>

#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "multigrid/solve_stats.hpp"

namespace asyncmg {

/// z = M^{-1} r. Implementations must be (numerically) SPD for CG theory
/// to apply.
using Preconditioner = std::function<void(const Vector& r, Vector& z)>;

struct PcgOptions {
  int max_iterations = 500;
  double tol = 1e-9;  // on ||r||_2 / ||b||_2
};

/// Reusable buffers for pcg_solve: callers issuing many solves (services,
/// benches) keep one across calls so the iteration allocates nothing after
/// the first solve. Contents are scratch; only capacity is reused.
struct PcgWorkspace {
  Vector r, z, p, ap;
};

/// Solves A x = b with (preconditioned) CG. Pass a null Preconditioner for
/// plain CG. Returns the residual history (entry i is after iteration i).
SolveStats pcg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond, const PcgOptions& opts);

/// Same iteration (identical arithmetic, identical results), temporaries
/// drawn from `ws`.
SolveStats pcg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond, const PcgOptions& opts,
                     PcgWorkspace& ws);

enum class MgPreconditionerKind {
  kBpx,                  // Eq. 1, one additive application
  kMultaddSymmetrized,   // Eq. 2 with Mbar^{-1}: equals symmetric V(1,1)
  kSymmetricVCycle,      // Algorithm 1 with transposed post-smoothing
};

/// Builds a multigrid preconditioner application around a setup. The
/// returned callable owns the per-application workspaces (shared across
/// calls: not thread-safe).
Preconditioner make_mg_preconditioner(const MgSetup& setup,
                                      MgPreconditionerKind kind);

}  // namespace asyncmg
