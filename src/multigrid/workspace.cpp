#include "multigrid/workspace.hpp"

#include "multigrid/setup.hpp"
#include "sparse/parallel.hpp"
#include "util/thread_context.hpp"

namespace asyncmg {

CycleWorkspace::CycleWorkspace(const MgSetup& setup, bool first_touch) {
  const std::size_t nl = setup.num_levels();
  r_.resize(nl);
  e_.resize(nl);
  tmp_.resize(nl);
  swp_.resize(nl);
  for (std::size_t k = 0; k < nl; ++k) {
    const auto n = static_cast<std::size_t>(setup.a(k).rows());
    r_[k].resize(n);
    e_[k].resize(n);
    tmp_[k].resize(n);
    swp_[k].resize(n);
  }
  if (!first_touch || this_thread_is_pool_worker()) return;
  for (std::size_t k = 0; k < nl; ++k) {
    const auto n = static_cast<Index>(r_[k].size());
    if (n < kSetupSerialCutoff) continue;
    Vector* const bufs[] = {&r_[k], &e_[k], &tmp_[k], &swp_[k]};
    for (Vector* v : bufs) {
      double* const p = v->data();
#pragma omp parallel for schedule(static)
      for (Index i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = 0.0;
    }
  }
}

std::size_t CycleWorkspace::bytes() const {
  std::size_t total = 0;
  for (const auto* vecs : {&r_, &e_, &tmp_, &swp_}) {
    for (const Vector& v : *vecs) total += v.capacity() * sizeof(double);
  }
  return total;
}

}  // namespace asyncmg
