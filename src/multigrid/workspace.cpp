#include "multigrid/workspace.hpp"

#include "backend/backend.hpp"
#include "multigrid/setup.hpp"

namespace asyncmg {

CycleWorkspace::CycleWorkspace(const MgSetup& setup, bool first_touch) {
  const std::size_t nl = setup.num_levels();
  const KernelBackend& be = setup.backend();
  r_.resize(nl);
  e_.resize(nl);
  tmp_.resize(nl);
  swp_.resize(nl);
  // The backend owns placement: prepare_workspace sizes each buffer and,
  // when first-touch is on, zero-fills it under the solve-phase OpenMP
  // schedule so pages land on the threads that will stream them.
  for (std::size_t k = 0; k < nl; ++k) {
    const auto n = static_cast<std::size_t>(setup.a(k).rows());
    for (Vector* v : {&r_[k], &e_[k], &tmp_[k], &swp_[k]}) {
      be.prepare_workspace(*v, n, first_touch);
    }
  }
}

std::size_t CycleWorkspace::bytes() const {
  std::size_t total = 0;
  for (const auto* vecs : {&r_, &e_, &tmp_, &swp_}) {
    for (const Vector& v : *vecs) total += v.capacity() * sizeof(double);
  }
  return total;
}

}  // namespace asyncmg
