#pragma once
// Multigrid setup object: owns the AMG hierarchy, one smoother per level,
// the explicitly assembled smoothed interpolants Pbar_{k+1}^k = G_k P_{k+1}^k
// used by Multadd (Section II-B1), the coarsest-level LU factorization, and
// per-grid work estimates for thread assignment (Section IV).
//
// Every solver in the library (multiplicative, additive, the asynchronous
// models and the shared-memory runtime) runs against one immovable MgSetup.

#include <memory>
#include <vector>

#include "amg/hierarchy.hpp"
#include "backend/backend.hpp"
#include "smoothers/smoother.hpp"
#include "sparse/dense.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sellcs.hpp"

namespace asyncmg {

struct MgOptions {
  AmgOptions amg;
  SmootherOptions smoother;
  /// Largest size for which the coarsest level is solved exactly by dense
  /// LU. (The hierarchy's coarse_size option keeps grids below this.)
  Index max_dense_coarse = 2000;
  /// Solve-phase kernel engine configuration (format selection, fusion,
  /// workspace first-touch).
  KernelEngineOptions engine;
};

class MgSetup {
 public:
  MgSetup(CsrMatrix a_fine, MgOptions opts);

  /// Wraps a prebuilt hierarchy (e.g. from the geometric builder in
  /// src/gmg or a deserialized one); opts.amg is ignored.
  MgSetup(Hierarchy hierarchy, MgOptions opts);

  MgSetup(const MgSetup&) = delete;
  MgSetup& operator=(const MgSetup&) = delete;

  const MgOptions& options() const { return opts_; }
  const Hierarchy& hierarchy() const { return h_; }

  /// Number of grids (levels), l + 1 in the paper's numbering.
  std::size_t num_levels() const { return h_.num_levels(); }

  const CsrMatrix& a(std::size_t k) const { return h_.matrix(k); }
  /// Plain interpolation P_{k+1}^k (defined for k < num_levels()-1).
  const CsrMatrix& p(std::size_t k) const { return h_.interpolation(k); }
  /// Smoothed interpolant Pbar_{k+1}^k (defined for k < num_levels()-1).
  const CsrMatrix& pbar(std::size_t k) const { return pbar_[k]; }
  /// Explicit restriction (P_{k+1}^k)^T, stored so the thread teams can
  /// restrict with a row-parallel SpMV.
  const CsrMatrix& r(std::size_t k) const { return rt_[k]; }
  /// Explicit (Pbar_{k+1}^k)^T.
  const CsrMatrix& rbar(std::size_t k) const { return rbart_[k]; }

  const Smoother& smoother(std::size_t k) const { return *smoothers_[k]; }
  const LuSolver& coarse_solver() const { return coarse_; }

  /// SELL-C-sigma form of A_k when the engine heuristic selected it for the
  /// level (level_prefers_sell); nullptr means the level runs CSR. Built
  /// once here — immutable and shared by every solver on this setup — so
  /// SolverPool lanes and per-request solvers never pay the conversion.
  const SellMatrix* sell(std::size_t k) const { return sell_[k].get(); }

  /// Kernel backend every solver on this setup runs against, resolved once
  /// at setup from opts.engine.backend / ASYNCMG_BACKEND / CPUID (DESIGN.md
  /// section 15). Never null; falls back to the scalar oracle.
  const KernelBackend& backend() const { return *backend_; }
  /// The resolved kind (what backend() actually is, after any fallback).
  BackendKind backend_kind() const { return backend_->kind(); }

  /// Approximate flops of one grid-k correction for the additive methods
  /// (restriction chain + smoothing + prolongation chain); used to balance
  /// threads across grids.
  const std::vector<double>& grid_work() const { return work_; }

 private:
  void init();

  MgOptions opts_;
  Hierarchy h_;
  const KernelBackend* backend_ = &scalar_backend();
  std::vector<std::unique_ptr<Smoother>> smoothers_;
  std::vector<std::unique_ptr<SellMatrix>> sell_;  // nullptr = CSR level
  std::vector<CsrMatrix> pbar_;
  std::vector<CsrMatrix> rt_;     // P^T per level
  std::vector<CsrMatrix> rbart_;  // Pbar^T per level
  LuSolver coarse_;
  std::vector<double> work_;
};

}  // namespace asyncmg
