#include "shard/router.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace asyncmg {

std::vector<RingNode> build_hash_ring(std::size_t num_backends,
                                      std::size_t vnodes_per_backend,
                                      std::uint64_t seed) {
  if (num_backends < 1) {
    throw std::invalid_argument("build_hash_ring: num_backends must be >= 1");
  }
  if (vnodes_per_backend < 1) {
    throw std::invalid_argument(
        "build_hash_ring: vnodes_per_backend must be >= 1");
  }
  std::vector<RingNode> ring;
  ring.reserve(num_backends * vnodes_per_backend);
  for (std::size_t b = 0; b < num_backends; ++b) {
    for (std::size_t v = 0; v < vnodes_per_backend; ++v) {
      const std::string label = "backend-" + std::to_string(b) + ":" +
                                std::to_string(v) + ":" +
                                std::to_string(seed);
      ring.push_back({fnv1a_bytes(label.data(), label.size()), b});
    }
  }
  std::sort(ring.begin(), ring.end(), [](const RingNode& l, const RingNode& r) {
    return l.hash < r.hash || (l.hash == r.hash && l.backend < r.backend);
  });
  return ring;
}

std::size_t ring_lookup(const std::vector<RingNode>& ring, std::uint64_t key) {
  if (ring.empty()) throw std::invalid_argument("ring_lookup: empty ring");
  auto it = std::lower_bound(
      ring.begin(), ring.end(), key,
      [](const RingNode& node, std::uint64_t k) { return node.hash < k; });
  if (it == ring.end()) it = ring.begin();  // wrap
  return it->backend;
}

std::uint64_t ring_key(const MatrixFingerprint& fp) {
  // Rehash so ring position is independent of the cache-key hash value.
  struct {
    std::uint64_t h;
    std::int64_t rows, cols, nnz;
  } probe{fp.hash, fp.rows, fp.cols, fp.nnz};
  return fnv1a_bytes(&probe, sizeof(probe));
}

void ShardRouterOptions::validate() const {
  if (num_backends < 1) {
    throw std::invalid_argument(
        "ShardRouterOptions: num_backends must be >= 1");
  }
  if (vnodes_per_backend < 1) {
    throw std::invalid_argument(
        "ShardRouterOptions: vnodes_per_backend must be >= 1");
  }
  if (service.num_threads < 1) {
    throw std::invalid_argument(
        "ShardRouterOptions: service.num_threads must be >= 1");
  }
  if (service.max_queue < 1) {
    throw std::invalid_argument(
        "ShardRouterOptions: service.max_queue must be >= 1");
  }
}

ShardRouter::ShardRouter(ShardRouterOptions opts) : opts_(std::move(opts)) {
  opts_.validate();
  backends_.reserve(opts_.num_backends);
  for (std::size_t b = 0; b < opts_.num_backends; ++b) {
    backends_.push_back(std::make_unique<SolveService>(opts_.service));
  }
  ring_ = build_hash_ring(opts_.num_backends, opts_.vnodes_per_backend,
                          opts_.ring_seed);
  routed_per_backend_.assign(opts_.num_backends, 0);
}

std::size_t ShardRouter::backend_of(const CsrMatrix& a) const {
  return ring_lookup(ring_, ring_key(matrix_fingerprint(a)));
}

std::future<SolveResponse> ShardRouter::submit(CsrMatrix a, Vector b,
                                               RequestOptions ropts) {
  const std::uint64_t key = ring_key(matrix_fingerprint(a));
  const std::size_t home = ring_lookup(ring_, key);
  // Failover walk: home first, then the remaining backends in ring order.
  // By-value parameters consume the arguments even when submit throws, so
  // every attempt but the last gets a copy and the originals stay usable.
  std::size_t tried = 0;
  std::size_t backend = home;
  while (true) {
    const bool last = tried + 1 >= backends_.size();
    try {
      auto fut = last
                     ? backends_[backend]->submit(std::move(a), std::move(b),
                                                  ropts)
                     : backends_[backend]->submit(a, b, ropts);
      const std::lock_guard<std::mutex> g(mu_);
      ++routed_;
      ++routed_per_backend_[backend];
      if (backend != home) ++failovers_;
      return fut;
    } catch (const ServiceOverloaded&) {
      if (++tried >= backends_.size()) throw;
      backend = (backend + 1) % backends_.size();
    }
  }
}

std::vector<BatchResult> ShardRouter::solve_batch(
    const CsrMatrix& a, const std::vector<Vector>& rhs, BatchOptions bopts) {
  const std::size_t home = backend_of(a);
  {
    const std::lock_guard<std::mutex> g(mu_);
    ++routed_;
    ++routed_per_backend_[home];
  }
  return backends_[home]->solve_batch(a, rhs, bopts);
}

std::string ShardRouter::stats_json() const {
  std::uint64_t routed = 0;
  std::uint64_t failovers = 0;
  std::vector<std::uint64_t> per_backend;
  {
    const std::lock_guard<std::mutex> g(mu_);
    routed = routed_;
    failovers = failovers_;
    per_backend = routed_per_backend_;
  }
  std::uint64_t submitted = 0, completed = 0, rejected = 0, timed_out = 0;
  std::vector<std::string> backend_json;
  backend_json.reserve(backends_.size());
  for (const auto& svc : backends_) {
    const ServiceStats st = svc->stats();
    submitted += st.submitted;
    completed += st.completed;
    rejected += st.rejected;
    timed_out += st.timed_out;
    backend_json.push_back(svc->stats_json());
  }
  std::ostringstream o;
  o << "{\"routed\":" << routed << ",\"failovers\":" << failovers
    << ",\"backends\":" << backends_.size() << ",\"routed_per_backend\":[";
  for (std::size_t b = 0; b < per_backend.size(); ++b) {
    if (b != 0) o << ",";
    o << per_backend[b];
  }
  o << "],\"totals\":{\"submitted\":" << submitted
    << ",\"completed\":" << completed << ",\"rejected\":" << rejected
    << ",\"timed_out\":" << timed_out << "},\"backend_stats\":[";
  for (std::size_t b = 0; b < backend_json.size(); ++b) {
    if (b != 0) o << ",";
    o << backend_json[b];
  }
  o << "]}";
  return o.str();
}

}  // namespace asyncmg
