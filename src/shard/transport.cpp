#include "shard/transport.hpp"

#include <stdexcept>

#include "telemetry/registry.hpp"

namespace asyncmg {

ChannelTransport::ChannelTransport(ChannelTransportOptions opts)
    : opts_(opts) {
  if (opts_.num_shards < 1) {
    throw std::invalid_argument("ChannelTransport: num_shards must be >= 1");
  }
  if (opts_.capacity < 1) {
    throw std::invalid_argument("ChannelTransport: capacity must be >= 1");
  }
  if (opts_.latency_us < 0.0) {
    throw std::invalid_argument("ChannelTransport: latency must be >= 0");
  }
  const std::size_t n =
      opts_.num_shards * opts_.num_shards * kNumHaloTags;
  edges_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto e = std::make_unique<Edge>();
    e->slots.resize(opts_.capacity);
    e->rng = Rng(opts_.seed * 0x9e3779b97f4a7c15ull + i);
    edges_.push_back(std::move(e));
  }
  if (opts_.metrics != nullptr) {
    metric_sent_ = &opts_.metrics->counter("shard.transport.packets_sent");
    metric_dropped_ =
        &opts_.metrics->counter("shard.transport.packets_dropped");
  }
}

bool ChannelTransport::send(std::size_t from, std::size_t to, HaloTag tag,
                            HaloPacket&& p) {
  Edge& e = edge(from, to, tag);
  const std::uint64_t tail = e.tail.load(std::memory_order_relaxed);
  const std::uint64_t head = e.head.load(std::memory_order_acquire);
  if (tail - head >= opts_.capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (metric_dropped_ != nullptr) metric_dropped_->add(1);
    return false;
  }
  Slot& s = e.slots[tail % opts_.capacity];
  s.packet = std::move(p);
  s.deliver_at = Clock::now();
  if (opts_.latency_us > 0.0) {
    const double us = opts_.latency_us * e.rng.uniform(0.5, 1.5);
    s.deliver_at += std::chrono::nanoseconds(
        static_cast<std::int64_t>(us * 1000.0));
  }
  e.tail.store(tail + 1, std::memory_order_release);
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (metric_sent_ != nullptr) metric_sent_->add(1);
  return true;
}

bool ChannelTransport::recv_latest(std::size_t to, std::size_t from,
                                   HaloTag tag, HaloPacket& out) {
  Edge& e = edge(from, to, tag);
  std::uint64_t head = e.head.load(std::memory_order_relaxed);
  const std::uint64_t tail = e.tail.load(std::memory_order_acquire);
  const Clock::time_point now = Clock::now();
  bool got = false;
  // Drain in publish order, keeping the newest deliverable packet; stop at
  // the first packet still in flight (later ones were sent even later).
  while (head < tail) {
    Slot& s = e.slots[head % opts_.capacity];
    if (s.deliver_at > now) break;
    out = std::move(s.packet);
    got = true;
    e.head.store(++head, std::memory_order_release);
  }
  return got;
}

bool ChannelTransport::recv_next(std::size_t to, std::size_t from,
                                 HaloTag tag, HaloPacket& out) {
  Edge& e = edge(from, to, tag);
  const std::uint64_t head = e.head.load(std::memory_order_relaxed);
  const std::uint64_t tail = e.tail.load(std::memory_order_acquire);
  if (head >= tail) return false;
  Slot& s = e.slots[head % opts_.capacity];
  if (s.deliver_at > Clock::now()) return false;
  out = std::move(s.packet);
  e.head.store(head + 1, std::memory_order_release);
  return true;
}

}  // namespace asyncmg
