#include "shard/worker.hpp"

#include <chrono>
#include <thread>

#include "telemetry/sink.hpp"

namespace asyncmg {

namespace {

/// BSP wait: FIFO-pops the next frame from `p`, yielding until one arrives
/// or `p` is dead. Publishes happen-before a peer's death (its frames were
/// queued before the dead flag was raised and transports deliver per-edge
/// in order), so one final recv after observing death is enough to consume
/// anything it managed to publish; after that the caller keeps its stale
/// view -- lost-message semantics, never a deadlock.
bool await_frame(Transport& transport, const PeerBoard& board, std::size_t s,
                 std::size_t p, HaloTag tag, HaloPacket& pkt) {
  int spins = 0;
  for (;;) {
    if (transport.recv_next(s, p, tag, pkt)) return true;
    if (board.dead(p)) return transport.recv_next(s, p, tag, pkt);
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      // Socket transports fill mailboxes from a reader thread; back off a
      // little so the wait does not starve it on oversubscribed hosts.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

}  // namespace

ShardWorkerResult run_shard_worker(const ShardPlan& plan,
                                   const AdditiveCorrector& corrector,
                                   const Vector& b, Vector& x_local,
                                   Vector& r_view, Transport& transport,
                                   PeerBoard& board,
                                   const ShardWorkerOptions& opts) {
  const std::size_t s = opts.shard;
  const std::size_t S = plan.num_shards;
  const Range rg = plan.owned[s];
  const FaultPlan* const faults = opts.faults;
  TelemetrySink* const tel =
      (opts.telemetry != nullptr && opts.telemetry->enabled())
          ? opts.telemetry
          : nullptr;

  ShardWorkerResult result;
  Vector staging(b.size(), 0.0);
  Vector ctmp;
  CorrectionScratch ws;
  HaloPacket pkt;

  // Newest-wins refresh of ghosts and foreign residual rows (free-running
  // discipline; also the gate's drain while waiting). A packet whose length
  // disagrees with the plan is discarded -- lost-message semantics, so no
  // Transport implementation can make these loops read or write outside the
  // plan's ranges (socket transports additionally validate at delivery).
  auto drain = [&]() {
    int got = 0;
    for (std::size_t p = 0; p < S; ++p) {
      if (p == s) continue;
      if (transport.recv_latest(s, p, HaloTag::kBoundaryX, pkt)) {
        const auto& slots = plan.ghost_slots[s][p];
        if (pkt.data.size() == slots.size()) {
          for (std::size_t i = 0; i < slots.size(); ++i) {
            x_local[slots[i]] = pkt.data[i];
          }
          ++got;
        }
      }
      if (transport.recv_latest(s, p, HaloTag::kResidualBlock, pkt)) {
        const Range prg = plan.owned[p];
        if (pkt.data.size() == prg.size()) {
          std::copy(pkt.data.begin(), pkt.data.end(),
                    r_view.begin() + static_cast<std::ptrdiff_t>(prg.begin));
          ++got;
        }
      }
    }
    return got;
  };
  auto within_lag = [&](int c) {
    for (std::size_t p = 0; p < S; ++p) {
      if (p == s || board.dead(p)) continue;
      if (board.commits(p) < c - opts.max_lag) return false;
    }
    return true;
  };
  auto publish_residual = [&](int c) {
    for (std::size_t p = 0; p < S; ++p) {
      if (p == s) continue;
      HaloPacket out;
      out.seq = static_cast<std::uint64_t>(c);
      out.data.assign(
          r_view.begin() + static_cast<std::ptrdiff_t>(rg.begin),
          r_view.begin() + static_cast<std::ptrdiff_t>(rg.end));
      if (!transport.send(s, p, HaloTag::kResidualBlock, std::move(out)) &&
          tel != nullptr) {
        tel->record(s, EventKind::kShardDrop, static_cast<std::int64_t>(s),
                    static_cast<std::int64_t>(p));
      }
    }
  };
  auto publish_boundary = [&](int c) {
    for (std::size_t p = 0; p < S; ++p) {
      if (p == s || plan.send[s][p].empty()) continue;
      HaloPacket out;
      out.seq = static_cast<std::uint64_t>(c + 1);
      out.data.resize(plan.send[s][p].size());
      for (std::size_t i = 0; i < out.data.size(); ++i) {
        out.data[i] =
            x_local[static_cast<std::size_t>(plan.send[s][p][i]) - rg.begin];
      }
      if (!transport.send(s, p, HaloTag::kBoundaryX, std::move(out)) &&
          tel != nullptr) {
        tel->record(s, EventKind::kShardDrop, static_cast<std::int64_t>(s),
                    static_cast<std::int64_t>(p));
      }
    }
  };

  for (int c = 0; c < opts.t_max; ++c) {
    if (faults != nullptr && faults->kills_grid(s, c)) {
      result.killed = true;
      break;
    }
    if (faults != nullptr) {
      const double ms = faults->stall_ms(s, c);
      if (ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }
    }
    const bool drop_read = faults != nullptr && faults->drops_read(s, c);
    if (drop_read) {
      ++result.reads_dropped;
      if (tel != nullptr) {
        tel->record(s, EventKind::kShardDrop, static_cast<std::int64_t>(s),
                    -1);
      }
    }

    if (opts.bsp) {
      // Round step 1: boundary frames of this round (ghosts = x after round
      // c - 1). Round 0 starts from the shared initial iterate.
      int got = 0;
      if (c > 0 && !drop_read) {
        for (std::size_t p = 0; p < S; ++p) {
          if (p == s || plan.send[p][s].empty()) continue;
          if (await_frame(transport, board, s, p, HaloTag::kBoundaryX, pkt)) {
            const auto& slots = plan.ghost_slots[s][p];
            if (pkt.data.size() == slots.size()) {
              for (std::size_t i = 0; i < slots.size(); ++i) {
                x_local[slots[i]] = pkt.data[i];
              }
              ++got;
            }
          }
        }
      }
      const std::int64_t t0 = tel != nullptr ? tel->clock().now_ns() : 0;
      // Step 2: own residual rows from the round's ghosts; publish before
      // waiting so the round's residual exchange can never cycle-wait.
      plan.local_a[s].residual_into(b, x_local, r_view);
      publish_residual(c);
      // Step 3: every live peer's residual block of THIS round -- the view
      // is globally fresh, which is what makes the discipline replay the
      // scripted full-schedule oracle bitwise.
      if (!drop_read) {
        for (std::size_t p = 0; p < S; ++p) {
          if (p == s) continue;
          if (await_frame(transport, board, s, p, HaloTag::kResidualBlock,
                          pkt)) {
            const Range prg = plan.owned[p];
            if (pkt.data.size() == prg.size()) {
              std::copy(
                  pkt.data.begin(), pkt.data.end(),
                  r_view.begin() + static_cast<std::ptrdiff_t>(prg.begin));
              ++got;
            }
          }
        }
      }
      if (tel != nullptr && got > 0) {
        tel->record(s, EventKind::kShardExchange,
                    static_cast<std::int64_t>(s), got);
      }
      // Step 4: correct, commit owned rows, publish the new boundary.
      std::fill(staging.begin() + static_cast<std::ptrdiff_t>(rg.begin),
                staging.begin() + static_cast<std::ptrdiff_t>(rg.end), 0.0);
      corrector.accumulate_cycle(r_view, staging, rg.begin, rg.end, ws,
                                 ctmp);
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        x_local[i - rg.begin] += staging[i];
      }
      publish_boundary(c);
      ++result.corrections;
      board.publish_commits(s, c + 1);
      if (tel != nullptr) {
        tel->record_at(s, t0, EventKind::kShardStep,
                       static_cast<std::int64_t>(s),
                       tel->clock().now_ns() - t0);
      }
      continue;
    }

    // Free-running discipline (PR 6 loop, verbatim semantics).
    //
    // Staleness gate (max_lag): run at most max_lag corrections ahead of
    // the slowest live peer, draining channels while waiting. Bounded skew
    // plus newest-wins channels is the executor's realization of the
    // model's bounded read delay.
    while (!within_lag(c)) {
      drain();
      std::this_thread::yield();
    }
    // Refresh the halo and the foreign residual view from whatever has
    // arrived; a dropped read keeps the stale view (lost message).
    if (!drop_read) {
      const int got = drain();
      if (tel != nullptr && got > 0) {
        tel->record(s, EventKind::kShardExchange,
                    static_cast<std::int64_t>(s), got);
      }
    }

    const std::int64_t t0 = tel != nullptr ? tel->clock().now_ns() : 0;
    // Own residual rows from the (possibly stale) halo; publish the block
    // (pre-correction) to every peer.
    plan.local_a[s].residual_into(b, x_local, r_view);
    publish_residual(c);
    // Full additive correction from the shard's residual view; commit the
    // owned rows only, then publish the committed boundary values.
    std::fill(staging.begin() + static_cast<std::ptrdiff_t>(rg.begin),
              staging.begin() + static_cast<std::ptrdiff_t>(rg.end), 0.0);
    corrector.accumulate_cycle(r_view, staging, rg.begin, rg.end, ws, ctmp);
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      x_local[i - rg.begin] += staging[i];
    }
    publish_boundary(c);
    ++result.corrections;
    board.publish_commits(s, c + 1);
    if (tel != nullptr) {
      tel->record_at(s, t0, EventKind::kShardStep,
                     static_cast<std::int64_t>(s),
                     tel->clock().now_ns() - t0);
    }
  }
  board.publish_dead(s);
  return result;
}

void shard_local_view(const ShardPlan& plan, std::size_t s, const Vector& x,
                      Vector& x_local) {
  const Range rg = plan.owned[s];
  x_local.resize(plan.local_size(s));
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(rg.begin),
            x.begin() + static_cast<std::ptrdiff_t>(rg.end), x_local.begin());
  const auto& h = plan.halo[s];
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    x_local[rg.size() + pos] = x[static_cast<std::size_t>(h[pos])];
  }
}

void shard_initial_residual(const ShardPlan& plan, const Vector& b,
                            const Vector& x, Vector& r) {
  r.resize(b.size());
  Vector x_local;
  for (std::size_t s = 0; s < plan.num_shards; ++s) {
    shard_local_view(plan, s, x, x_local);
    plan.local_a[s].residual_into(b, x_local, r);
  }
}

}  // namespace asyncmg
