#include "shard/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace asyncmg {

std::size_t ShardPlan::owner_of(Index row) const {
  // Ranges are contiguous and sorted: binary search on begin.
  std::size_t lo = 0, hi = num_shards - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (static_cast<Index>(owned[mid].begin) <= row) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::size_t ShardPlan::total_halo() const {
  std::size_t t = 0;
  for (const auto& h : halo) t += h.size();
  return t;
}

ShardPlan make_shard_plan(const CsrMatrix& a, std::size_t num_shards) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("make_shard_plan: matrix must be square");
  }
  if (num_shards < 1) {
    throw std::invalid_argument("make_shard_plan: num_shards must be >= 1");
  }
  if (num_shards > static_cast<std::size_t>(a.rows())) {
    throw std::invalid_argument(
        "make_shard_plan: more shards than matrix rows");
  }

  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.n = a.rows();
  plan.owned = nnz_balanced_chunks(a.row_ptr(), num_shards);

  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();

  // Halo of each shard: referenced columns outside the owned range,
  // deduplicated and sorted.
  plan.halo.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const Range rg = plan.owned[s];
    std::vector<Index>& h = plan.halo[s];
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        const Index g = ci[static_cast<std::size_t>(k)];
        if (g < static_cast<Index>(rg.begin) ||
            g >= static_cast<Index>(rg.end)) {
          h.push_back(g);
        }
      }
    }
    std::sort(h.begin(), h.end());
    h.erase(std::unique(h.begin(), h.end()), h.end());
  }

  // Send lists and the matching receiver-side ghost slots. halo[s] is
  // sorted and owner ranges are contiguous, so splitting it by owner keeps
  // each per-peer list sorted -- the alignment the packed payloads rely on.
  plan.send.assign(num_shards, std::vector<std::vector<Index>>(num_shards));
  plan.ghost_slots.assign(
      num_shards, std::vector<std::vector<std::size_t>>(num_shards));
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t owned_size = plan.owned[s].size();
    for (std::size_t pos = 0; pos < plan.halo[s].size(); ++pos) {
      const Index g = plan.halo[s][pos];
      const std::size_t p = plan.owner_of(g);
      plan.send[p][s].push_back(g);
      plan.ghost_slots[s][p].push_back(owned_size + pos);
    }
  }

  // Local stencils: global -> local map per shard (owned first, ghosts
  // after, ghosts in sorted-global order).
  std::vector<Index> g2l(static_cast<std::size_t>(plan.n));
  for (std::size_t s = 0; s < num_shards; ++s) {
    std::fill(g2l.begin(), g2l.end(), Index{-1});
    const Range rg = plan.owned[s];
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      g2l[i] = static_cast<Index>(i - rg.begin);
    }
    for (std::size_t pos = 0; pos < plan.halo[s].size(); ++pos) {
      g2l[static_cast<std::size_t>(plan.halo[s][pos])] =
          static_cast<Index>(rg.size() + pos);
    }
    plan.local_a.push_back(LocalStencil::from_rows(
        a, static_cast<Index>(rg.begin), static_cast<Index>(rg.end), g2l,
        static_cast<Index>(plan.local_size(s))));
  }
  return plan;
}

}  // namespace asyncmg
