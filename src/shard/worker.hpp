#pragma once
// The per-shard execution loop of the sharded asynchronous solver, factored
// out of ShardedSolver so the SAME loop body runs in-process (one thread per
// shard over the lock-free ChannelTransport) and out-of-process (one worker
// process per shard over the TCP SocketTransport, src/net). Everything the
// loop touches is behind two seams:
//
//   Transport  (shard/transport.hpp)  halo/residual packet exchange
//   PeerBoard  (below)                peer progress + liveness
//
// Two disciplines:
//
//   free-running (bsp = false)  the PR 6 asynchronous loop verbatim: drain
//       newest-wins packets, bounded-skew gate against the slowest LIVE
//       peer, stale views on drops, Criterion-2 recovery when a peer dies.
//
//   bulk-synchronous (bsp = true)  a deterministic two-exchange round:
//         1. await + apply every live peer's boundary frame of this round
//            (ghosts now hold x after round c-1),
//         2. compute own residual rows, publish the residual block (seq c),
//         3. await + apply every live peer's residual block of THIS round
//            (the residual view is globally fresh at round c),
//         4. correct, commit owned rows, publish boundaries (seq c+1).
//       Every read is uniquely determined by the round structure, never by
//       message timing, so the iterates are bitwise identical on ANY
//       transport -- and identical to ShardedSolver's kSynchronous scripted
//       oracle (the full-schedule semantics replayed over messages). Frames
//       are consumed in FIFO order (Transport::recv_next) one per round, so
//       a fast peer can run at most one round ahead and a default-capacity
//       ring never drops a BSP frame. A dead peer is exempted from both
//       waits after one final drain (its published frames happen-before its
//       death), so a killed worker degrades the view instead of deadlocking
//       the round -- Criterion-2 across processes.

#include <atomic>
#include <cstdint>
#include <vector>

#include "async/schedule.hpp"
#include "multigrid/additive.hpp"
#include "shard/partition.hpp"
#include "shard/transport.hpp"

namespace asyncmg {

class TelemetrySink;

/// Peer progress and liveness, the control-plane seam of the shard loop.
/// commits(p) is peer p's committed correction count (the bounded-skew
/// gate's input); dead(p) means p will never commit again -- killed,
/// finished, or its process lost -- so gates and BSP waits must exempt it.
class PeerBoard {
 public:
  virtual ~PeerBoard() = default;

  /// Publishes this shard's committed correction count.
  virtual void publish_commits(std::size_t self, int commits) = 0;
  /// Marks this shard permanently done (finished or killed).
  virtual void publish_dead(std::size_t self) = 0;

  virtual int commits(std::size_t peer) const = 0;
  virtual bool dead(std::size_t peer) const = 0;
};

/// Shared-atomics board for in-process shards (one thread per shard). The
/// release/acquire pairs are the same ones ShardedSolver used inline; a
/// publish is one store, a read one load.
class LocalPeerBoard final : public PeerBoard {
 public:
  explicit LocalPeerBoard(std::size_t num_shards)
      : commits_(num_shards), dead_(num_shards) {}

  void publish_commits(std::size_t self, int commits) override {
    commits_[self].store(commits, std::memory_order_release);
  }
  void publish_dead(std::size_t self) override {
    dead_[self].store(true, std::memory_order_release);
  }
  int commits(std::size_t peer) const override {
    return commits_[peer].load(std::memory_order_acquire);
  }
  bool dead(std::size_t peer) const override {
    return dead_[peer].load(std::memory_order_acquire);
  }

 private:
  std::vector<std::atomic<int>> commits_;
  std::vector<std::atomic<bool>> dead_;
};

struct ShardWorkerOptions {
  std::size_t shard = 0;
  int t_max = 20;
  /// Free-running mode: run at most max_lag corrections ahead of the
  /// slowest live peer (ignored when bsp).
  int max_lag = 3;
  /// Bulk-synchronous rounds (see header comment); deterministic on any
  /// transport.
  bool bsp = false;
  /// Fault injection; grid ids are shard ids. Not owned; may be null.
  const FaultPlan* faults = nullptr;
  /// Per-shard wall-time events on tid = shard. Not owned; may be null.
  TelemetrySink* telemetry = nullptr;
};

struct ShardWorkerResult {
  int corrections = 0;
  int reads_dropped = 0;
  bool killed = false;
};

/// Runs one shard's correction loop to completion. `x_local` is the shard's
/// [owned; ghosts] block prefilled from the initial iterate; `r_view` the
/// full-length initial residual (identical in every participant: both are
/// deterministic functions of the problem, so processes agree without any
/// startup exchange). On return x_local holds the shard's final owned block
/// (+ last ghost view).
ShardWorkerResult run_shard_worker(const ShardPlan& plan,
                                   const AdditiveCorrector& corrector,
                                   const Vector& b, Vector& x_local,
                                   Vector& r_view, Transport& transport,
                                   PeerBoard& board,
                                   const ShardWorkerOptions& opts);

/// Fills shard s's [owned; ghosts] block from the full-length iterate `x`
/// (resizing x_local to plan.local_size(s)).
void shard_local_view(const ShardPlan& plan, std::size_t s, const Vector& x,
                      Vector& x_local);

/// Full-length residual b - A x assembled shard by shard from the local
/// stencils -- bitwise equal in every process that holds the same plan, b,
/// and x, which is why a multi-process solve needs no startup residual
/// exchange.
void shard_initial_residual(const ShardPlan& plan, const Vector& b,
                            const Vector& x, Vector& r);

}  // namespace asyncmg
