#include "shard/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "async/model.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/timer.hpp"

namespace asyncmg {

std::string shard_mode_name(ShardMode m) {
  switch (m) {
    case ShardMode::kSynchronous:
      return "sync";
    case ShardMode::kAsynchronous:
      return "async";
    case ShardMode::kScripted:
      return "scripted";
  }
  return "unknown";
}

void ShardOptions::validate() const {
  if (num_shards < 1) {
    throw std::invalid_argument("ShardOptions: num_shards must be >= 1");
  }
  if (t_max < 1) {
    throw std::invalid_argument("ShardOptions: t_max must be >= 1");
  }
  if (channel_capacity < 1) {
    throw std::invalid_argument(
        "ShardOptions: channel_capacity must be >= 1");
  }
  if (!(latency_us >= 0.0) || !std::isfinite(latency_us)) {
    throw std::invalid_argument(
        "ShardOptions: latency_us must be finite and >= 0");
  }
  if (max_lag < 0) {
    throw std::invalid_argument("ShardOptions: max_lag must be >= 0");
  }
  if (!(script_alpha > 0.0) || script_alpha > 1.0) {
    throw std::invalid_argument(
        "ShardOptions: script_alpha must be in (0, 1]");
  }
  if (script_max_delay < 0) {
    throw std::invalid_argument(
        "ShardOptions: script_max_delay must be >= 0");
  }
}

double ShardResult::mean_corrections() const {
  if (corrections.empty()) return 0.0;
  double s = 0.0;
  for (int c : corrections) s += c;
  return s / static_cast<double>(corrections.size());
}

namespace {

/// Ring buffer of the last `depth` snapshots, indexed by absolute instant
/// (same shape as the model simulator's history window).
class History {
 public:
  History(int depth, const Vector& initial)
      : depth_(depth),
        snapshots_(static_cast<std::size_t>(depth), initial) {}

  const Vector& at(int t) const {
    return snapshots_[static_cast<std::size_t>(t % depth_)];
  }
  void push(int t, const Vector& state) {
    snapshots_[static_cast<std::size_t>(t % depth_)] = state;
  }

 private:
  int depth_;
  std::vector<Vector> snapshots_;
};

/// Per-shard working set (scripted: reused across the shard's events;
/// async: owned by the shard's thread, never shared).
struct ShardState {
  Vector x_local;   // [owned rows; ghosts]
  Vector r_view;    // full-length residual view (async)
  Vector r_read;    // assembled per-event residual view (scripted)
  Vector staging;   // full length; only the owned range is written
  Vector ctmp;
  CorrectionScratch ws;
  int corrections = 0;
  int reads_dropped = 0;
  bool killed = false;
};

void fill_ghosts(const ShardPlan& plan, std::size_t s, const Vector& from,
                 Vector& x_local) {
  const std::size_t owned_size = plan.owned[s].size();
  const auto& h = plan.halo[s];
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    x_local[owned_size + pos] = from[static_cast<std::size_t>(h[pos])];
  }
}

}  // namespace

ShardedSolver::ShardedSolver(const MgSetup& setup, AdditiveOptions ao,
                             ShardOptions so)
    : setup_(&setup), corrector_(setup, ao), opts_(so) {
  opts_.validate();
  plan_ = make_shard_plan(setup.a(0), opts_.num_shards);
}

void ShardedSolver::initial_residual(const Vector& b, const Vector& x,
                                     Vector& r) const {
  r.resize(b.size());
  Vector x_local;
  for (std::size_t s = 0; s < plan_.num_shards; ++s) {
    const Range rg = plan_.owned[s];
    x_local.resize(plan_.local_size(s));
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(rg.begin),
              x.begin() + static_cast<std::ptrdiff_t>(rg.end),
              x_local.begin());
    fill_ghosts(plan_, s, x, x_local);
    plan_.local_a[s].residual_into(b, x_local, r);
  }
}

double ShardedSolver::rel_res(const Vector& b, const Vector& x) const {
  Vector r;
  setup_->a(0).residual(b, x, r);
  const double bnorm = norm2(b);
  return norm2(r) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);
}

ShardResult ShardedSolver::solve(const Vector& b, Vector& x) {
  if (b.size() != static_cast<std::size_t>(plan_.n) || x.size() != b.size()) {
    throw std::invalid_argument("ShardedSolver: b/x size mismatch");
  }
  switch (opts_.mode) {
    case ShardMode::kSynchronous:
      return run_scripted(full_schedule(plan_.num_shards, opts_.t_max), b, x);
    case ShardMode::kScripted: {
      if (opts_.schedule != nullptr) {
        return run_scripted(*opts_.schedule, b, x);
      }
      AsyncModelOptions mo;
      mo.alpha = opts_.script_alpha;
      mo.max_delay = opts_.script_max_delay;
      mo.updates_per_grid = opts_.t_max;
      mo.seed = opts_.seed;
      return run_scripted(sample_schedule(plan_.num_shards, mo), b, x);
    }
    case ShardMode::kAsynchronous:
      return run_async(b, x);
  }
  throw std::logic_error("ShardedSolver: unknown mode");
}

ShardResult ShardedSolver::run_scripted(const Schedule& sched, const Vector& b,
                                        Vector& x) {
  const ScheduleCheck check = validate_schedule(sched, plan_.num_shards);
  if (!check.ok) {
    throw std::invalid_argument("ShardedSolver: schedule invalid: " +
                                check.error);
  }
  const std::size_t n = b.size();
  Timer timer;

  ShardResult result;
  result.corrections.assign(plan_.num_shards, 0);

  Vector published_r;
  initial_residual(b, x, published_r);
  const int depth = check.max_staleness + 1;
  History hx(depth, x);
  History hr(depth, published_r);

  std::vector<ShardState> st(plan_.num_shards);
  for (std::size_t s = 0; s < plan_.num_shards; ++s) {
    st[s].x_local.resize(plan_.local_size(s));
    st[s].staging.assign(n, 0.0);
  }

  TelemetrySink* const tel =
      (opts_.telemetry != nullptr && opts_.telemetry->enabled())
          ? opts_.telemetry
          : nullptr;
  std::vector<bool> killed(plan_.num_shards, false);

  int t = 0;
  for (const std::vector<ScheduleEvent>& inst : sched.instants) {
    if (tel != nullptr) tel->record_at(0, t, EventKind::kInstant, t, 1);
    // Phase 1 -- residual publish: every scheduled shard computes its own
    // residual rows from its current owned block and the ghost snapshot of
    // its read instant, and publishes them. hr snapshot t is the published
    // state *after* this phase, so a fresh read (z = t) sees every row of
    // this instant's exchange -- the BSP semantics that make the S-shard
    // synchronous run bitwise-equal to the single-shard oracle.
    for (const ScheduleEvent& ev : inst) {
      const std::size_t s = ev.grid;
      if (killed[s] || (opts_.faults != nullptr &&
                        opts_.faults->kills_grid(s, result.corrections[s]))) {
        if (!killed[s]) {
          killed[s] = true;
          result.killed_shards.push_back(s);
        }
        continue;
      }
      const Range rg = plan_.owned[s];
      ShardState& sh = st[s];
      std::copy(x.begin() + static_cast<std::ptrdiff_t>(rg.begin),
                x.begin() + static_cast<std::ptrdiff_t>(rg.end),
                sh.x_local.begin());
      fill_ghosts(plan_, s, hx.at(ev.read_instant), sh.x_local);
      plan_.local_a[s].residual_into(b, sh.x_local, published_r);
    }
    hr.push(t, published_r);
    // Phase 2 -- correct and commit: each shard assembles its residual view
    // (foreign rows from its read-instant snapshot, own rows always the
    // fresh ones it just published), forms the full additive correction,
    // and commits its owned rows. Ownership is disjoint and reads come from
    // snapshots, so committing in event order is the joint per-instant
    // apply of the semi-async model.
    for (const ScheduleEvent& ev : inst) {
      const std::size_t s = ev.grid;
      if (killed[s]) continue;
      const Range rg = plan_.owned[s];
      ShardState& sh = st[s];
      sh.r_read = hr.at(ev.read_instant);
      std::copy(published_r.begin() + static_cast<std::ptrdiff_t>(rg.begin),
                published_r.begin() + static_cast<std::ptrdiff_t>(rg.end),
                sh.r_read.begin() + static_cast<std::ptrdiff_t>(rg.begin));
      std::fill(sh.staging.begin() + static_cast<std::ptrdiff_t>(rg.begin),
                sh.staging.begin() + static_cast<std::ptrdiff_t>(rg.end),
                0.0);
      corrector_.accumulate_cycle(sh.r_read, sh.staging, rg.begin, rg.end,
                                  sh.ws, sh.ctmp);
      for (std::size_t i = rg.begin; i < rg.end; ++i) x[i] += sh.staging[i];
      ++result.corrections[s];
      if (tel != nullptr) {
        tel->record_at(0, t, EventKind::kShardStep,
                       static_cast<std::int64_t>(s), 1);
        tel->record_at(0, t, EventKind::kShardExchange,
                       static_cast<std::int64_t>(s), ev.read_instant);
      }
    }
    ++t;
    hx.push(t, x);
    if (opts_.record_history) {
      result.rel_res_history.push_back(rel_res(b, x));
    }
  }

  result.instants = t;
  result.seconds = timer.seconds();
  result.final_rel_res = rel_res(b, x);
  return result;
}

ShardResult ShardedSolver::run_async(const Vector& b, Vector& x) {
  const std::size_t S = plan_.num_shards;
  const std::size_t n = b.size();
  Timer timer;

  ChannelTransportOptions to;
  to.num_shards = S;
  to.capacity = opts_.channel_capacity;
  to.latency_us = opts_.latency_us;
  to.seed = opts_.seed;
  ChannelTransport transport(to);

  Vector r0;
  initial_residual(b, x, r0);

  std::vector<ShardState> st(S);
  for (std::size_t s = 0; s < S; ++s) {
    const Range rg = plan_.owned[s];
    st[s].x_local.resize(plan_.local_size(s));
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(rg.begin),
              x.begin() + static_cast<std::ptrdiff_t>(rg.end),
              st[s].x_local.begin());
    fill_ghosts(plan_, s, x, st[s].x_local);
    st[s].r_view = r0;
    st[s].staging.assign(n, 0.0);
  }

  TelemetrySink* const tel =
      (opts_.telemetry != nullptr && opts_.telemetry->enabled())
          ? opts_.telemetry
          : nullptr;
  const FaultPlan* const faults = opts_.faults;
  // Shared progress board for the staleness gate: commits[s] is shard s's
  // committed correction count, dead[s] marks a shard that will never
  // commit again (killed or finished) so peers must not wait for it
  // (Criterion-2 recovery). The slowest live shard never waits, so the
  // gate cannot form a wait cycle.
  std::vector<std::atomic<int>> commits(S);
  std::vector<std::atomic<bool>> dead(S);

  auto shard_main = [&](std::size_t s) {
    const Range rg = plan_.owned[s];
    ShardState& sh = st[s];
    HaloPacket pkt;

    auto drain = [&]() {
      int got = 0;
      for (std::size_t p = 0; p < S; ++p) {
        if (p == s) continue;
        if (transport.recv_latest(s, p, HaloTag::kBoundaryX, pkt)) {
          const auto& slots = plan_.ghost_slots[s][p];
          for (std::size_t i = 0; i < slots.size(); ++i) {
            sh.x_local[slots[i]] = pkt.data[i];
          }
          ++got;
        }
        if (transport.recv_latest(s, p, HaloTag::kResidualBlock, pkt)) {
          const Range prg = plan_.owned[p];
          std::copy(pkt.data.begin(), pkt.data.end(),
                    sh.r_view.begin() + static_cast<std::ptrdiff_t>(prg.begin));
          ++got;
        }
      }
      return got;
    };
    auto within_lag = [&](int c) {
      for (std::size_t p = 0; p < S; ++p) {
        if (p == s || dead[p].load(std::memory_order_acquire)) continue;
        if (commits[p].load(std::memory_order_acquire) < c - opts_.max_lag) {
          return false;
        }
      }
      return true;
    };

    for (int c = 0; c < opts_.t_max; ++c) {
      if (faults != nullptr && faults->kills_grid(s, c)) {
        sh.killed = true;
        break;
      }
      if (faults != nullptr) {
        const double ms = faults->stall_ms(s, c);
        if (ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
        }
      }
      // Staleness gate (ShardOptions::max_lag): run at most max_lag
      // corrections ahead of the slowest live peer, draining channels while
      // waiting. Bounded skew plus newest-wins channels is the executor's
      // realization of the model's bounded read delay.
      while (!within_lag(c)) {
        drain();
        std::this_thread::yield();
      }
      // Refresh the halo and the foreign residual view from whatever has
      // arrived; a dropped read keeps the stale view (lost message).
      if (faults != nullptr && faults->drops_read(s, c)) {
        ++sh.reads_dropped;
        if (tel != nullptr) {
          tel->record(s, EventKind::kShardDrop,
                      static_cast<std::int64_t>(s), -1);
        }
      } else {
        const int got = drain();
        if (tel != nullptr && got > 0) {
          tel->record(s, EventKind::kShardExchange,
                      static_cast<std::int64_t>(s), got);
        }
      }

      const std::int64_t t0 = tel != nullptr ? tel->clock().now_ns() : 0;
      // Own residual rows from the (possibly stale) halo.
      plan_.local_a[s].residual_into(b, sh.x_local, sh.r_view);
      // Publish the residual block (pre-correction) to every peer.
      for (std::size_t p = 0; p < S; ++p) {
        if (p == s) continue;
        HaloPacket out;
        out.seq = static_cast<std::uint64_t>(c);
        out.data.assign(
            sh.r_view.begin() + static_cast<std::ptrdiff_t>(rg.begin),
            sh.r_view.begin() + static_cast<std::ptrdiff_t>(rg.end));
        if (!transport.send(s, p, HaloTag::kResidualBlock, std::move(out)) &&
            tel != nullptr) {
          tel->record(s, EventKind::kShardDrop, static_cast<std::int64_t>(s),
                      static_cast<std::int64_t>(p));
        }
      }
      // Full additive correction from the shard's residual view; commit
      // the owned rows only.
      std::fill(sh.staging.begin() + static_cast<std::ptrdiff_t>(rg.begin),
                sh.staging.begin() + static_cast<std::ptrdiff_t>(rg.end),
                0.0);
      corrector_.accumulate_cycle(sh.r_view, sh.staging, rg.begin, rg.end,
                                  sh.ws, sh.ctmp);
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        sh.x_local[i - rg.begin] += sh.staging[i];
      }
      // Publish the committed boundary values.
      for (std::size_t p = 0; p < S; ++p) {
        if (p == s || plan_.send[s][p].empty()) continue;
        HaloPacket out;
        out.seq = static_cast<std::uint64_t>(c + 1);
        out.data.resize(plan_.send[s][p].size());
        for (std::size_t i = 0; i < out.data.size(); ++i) {
          out.data[i] = sh.x_local[static_cast<std::size_t>(
                            plan_.send[s][p][i]) -
                        rg.begin];
        }
        if (!transport.send(s, p, HaloTag::kBoundaryX, std::move(out)) &&
            tel != nullptr) {
          tel->record(s, EventKind::kShardDrop, static_cast<std::int64_t>(s),
                      static_cast<std::int64_t>(p));
        }
      }
      ++sh.corrections;
      commits[s].store(c + 1, std::memory_order_release);
      if (tel != nullptr) {
        tel->record_at(s, t0, EventKind::kShardStep,
                       static_cast<std::int64_t>(s),
                       tel->clock().now_ns() - t0);
      }
    }
    dead[s].store(true, std::memory_order_release);
  };

  std::vector<std::thread> threads;
  threads.reserve(S);
  for (std::size_t s = 0; s < S; ++s) threads.emplace_back(shard_main, s);
  for (std::thread& th : threads) th.join();

  ShardResult result;
  result.corrections.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    const Range rg = plan_.owned[s];
    std::copy(st[s].x_local.begin(),
              st[s].x_local.begin() + static_cast<std::ptrdiff_t>(rg.size()),
              x.begin() + static_cast<std::ptrdiff_t>(rg.begin));
    result.corrections[s] = st[s].corrections;
    result.reads_dropped += st[s].reads_dropped;
    if (st[s].killed) result.killed_shards.push_back(s);
  }
  result.packets_sent = transport.packets_sent();
  result.packets_dropped = transport.packets_dropped();
  result.seconds = timer.seconds();
  result.final_rel_res = rel_res(b, x);
  return result;
}

}  // namespace asyncmg
