#include "shard/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include <sstream>

#include "async/model.hpp"
#include "shard/worker.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/timer.hpp"

namespace asyncmg {

std::string shard_mode_name(ShardMode m) {
  switch (m) {
    case ShardMode::kSynchronous:
      return "sync";
    case ShardMode::kAsynchronous:
      return "async";
    case ShardMode::kScripted:
      return "scripted";
    case ShardMode::kSyncTransport:
      return "sync-transport";
  }
  return "unknown";
}

void ShardOptions::validate() const {
  if (num_shards < 1) {
    throw std::invalid_argument("ShardOptions: num_shards must be >= 1");
  }
  if (t_max < 1) {
    throw std::invalid_argument("ShardOptions: t_max must be >= 1");
  }
  if (channel_capacity < 1) {
    throw std::invalid_argument(
        "ShardOptions: channel_capacity must be >= 1");
  }
  if (!(latency_us >= 0.0) || !std::isfinite(latency_us)) {
    throw std::invalid_argument(
        "ShardOptions: latency_us must be finite and >= 0");
  }
  if (max_lag < 0) {
    throw std::invalid_argument("ShardOptions: max_lag must be >= 0");
  }
  if (!(script_alpha > 0.0) || script_alpha > 1.0) {
    throw std::invalid_argument(
        "ShardOptions: script_alpha must be in (0, 1]");
  }
  if (script_max_delay < 0) {
    throw std::invalid_argument(
        "ShardOptions: script_max_delay must be >= 0");
  }
}

double ShardResult::mean_corrections() const {
  if (corrections.empty()) return 0.0;
  double s = 0.0;
  for (int c : corrections) s += c;
  return s / static_cast<double>(corrections.size());
}

std::string ShardResult::to_json() const {
  std::ostringstream o;
  o << "{\"final_rel_res\":" << final_rel_res << ",\"seconds\":" << seconds
    << ",\"instants\":" << instants
    << ",\"mean_corrections\":" << mean_corrections()
    << ",\"packets_sent\":" << packets_sent
    << ",\"packets_dropped\":" << packets_dropped
    << ",\"reads_dropped\":" << reads_dropped << ",\"killed_shards\":[";
  for (std::size_t i = 0; i < killed_shards.size(); ++i) {
    if (i != 0) o << ",";
    o << killed_shards[i];
  }
  o << "]}";
  return o.str();
}

namespace {

/// Ring buffer of the last `depth` snapshots, indexed by absolute instant
/// (same shape as the model simulator's history window).
class History {
 public:
  History(int depth, const Vector& initial)
      : depth_(depth),
        snapshots_(static_cast<std::size_t>(depth), initial) {}

  const Vector& at(int t) const {
    return snapshots_[static_cast<std::size_t>(t % depth_)];
  }
  void push(int t, const Vector& state) {
    snapshots_[static_cast<std::size_t>(t % depth_)] = state;
  }

 private:
  int depth_;
  std::vector<Vector> snapshots_;
};

/// Per-shard working set (scripted: reused across the shard's events;
/// async: owned by the shard's thread, never shared).
struct ShardState {
  Vector x_local;   // [owned rows; ghosts]
  Vector r_view;    // full-length residual view (async)
  Vector r_read;    // assembled per-event residual view (scripted)
  Vector staging;   // full length; only the owned range is written
  Vector ctmp;
  CorrectionScratch ws;
  int corrections = 0;
  int reads_dropped = 0;
  bool killed = false;
};

void fill_ghosts(const ShardPlan& plan, std::size_t s, const Vector& from,
                 Vector& x_local) {
  const std::size_t owned_size = plan.owned[s].size();
  const auto& h = plan.halo[s];
  for (std::size_t pos = 0; pos < h.size(); ++pos) {
    x_local[owned_size + pos] = from[static_cast<std::size_t>(h[pos])];
  }
}

}  // namespace

ShardedSolver::ShardedSolver(const MgSetup& setup, AdditiveOptions ao,
                             ShardOptions so)
    : setup_(&setup), corrector_(setup, ao), opts_(so) {
  opts_.validate();
  plan_ = make_shard_plan(setup.a(0), opts_.num_shards);
}

void ShardedSolver::initial_residual(const Vector& b, const Vector& x,
                                     Vector& r) const {
  shard_initial_residual(plan_, b, x, r);
}

double ShardedSolver::rel_res(const Vector& b, const Vector& x) const {
  Vector r;
  setup_->a(0).residual(b, x, r);
  const double bnorm = norm2(b);
  return norm2(r) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);
}

ShardResult ShardedSolver::solve(const Vector& b, Vector& x) {
  if (b.size() != static_cast<std::size_t>(plan_.n) || x.size() != b.size()) {
    throw std::invalid_argument("ShardedSolver: b/x size mismatch");
  }
  switch (opts_.mode) {
    case ShardMode::kSynchronous:
      return run_scripted(full_schedule(plan_.num_shards, opts_.t_max), b, x);
    case ShardMode::kScripted: {
      if (opts_.schedule != nullptr) {
        return run_scripted(*opts_.schedule, b, x);
      }
      AsyncModelOptions mo;
      mo.alpha = opts_.script_alpha;
      mo.max_delay = opts_.script_max_delay;
      mo.updates_per_grid = opts_.t_max;
      mo.seed = opts_.seed;
      return run_scripted(sample_schedule(plan_.num_shards, mo), b, x);
    }
    case ShardMode::kAsynchronous:
      return run_async(b, x, /*bsp=*/false);
    case ShardMode::kSyncTransport:
      return run_async(b, x, /*bsp=*/true);
  }
  throw std::logic_error("ShardedSolver: unknown mode");
}

ShardResult ShardedSolver::run_scripted(const Schedule& sched, const Vector& b,
                                        Vector& x) {
  const ScheduleCheck check = validate_schedule(sched, plan_.num_shards);
  if (!check.ok) {
    throw std::invalid_argument("ShardedSolver: schedule invalid: " +
                                check.error);
  }
  const std::size_t n = b.size();
  Timer timer;

  ShardResult result;
  result.corrections.assign(plan_.num_shards, 0);

  Vector published_r;
  initial_residual(b, x, published_r);
  const int depth = check.max_staleness + 1;
  History hx(depth, x);
  History hr(depth, published_r);

  std::vector<ShardState> st(plan_.num_shards);
  for (std::size_t s = 0; s < plan_.num_shards; ++s) {
    st[s].x_local.resize(plan_.local_size(s));
    st[s].staging.assign(n, 0.0);
  }

  TelemetrySink* const tel =
      (opts_.telemetry != nullptr && opts_.telemetry->enabled())
          ? opts_.telemetry
          : nullptr;
  std::vector<bool> killed(plan_.num_shards, false);

  int t = 0;
  for (const std::vector<ScheduleEvent>& inst : sched.instants) {
    if (tel != nullptr) tel->record_at(0, t, EventKind::kInstant, t, 1);
    // Phase 1 -- residual publish: every scheduled shard computes its own
    // residual rows from its current owned block and the ghost snapshot of
    // its read instant, and publishes them. hr snapshot t is the published
    // state *after* this phase, so a fresh read (z = t) sees every row of
    // this instant's exchange -- the BSP semantics that make the S-shard
    // synchronous run bitwise-equal to the single-shard oracle.
    for (const ScheduleEvent& ev : inst) {
      const std::size_t s = ev.grid;
      if (killed[s] || (opts_.faults != nullptr &&
                        opts_.faults->kills_grid(s, result.corrections[s]))) {
        if (!killed[s]) {
          killed[s] = true;
          result.killed_shards.push_back(s);
        }
        continue;
      }
      const Range rg = plan_.owned[s];
      ShardState& sh = st[s];
      std::copy(x.begin() + static_cast<std::ptrdiff_t>(rg.begin),
                x.begin() + static_cast<std::ptrdiff_t>(rg.end),
                sh.x_local.begin());
      fill_ghosts(plan_, s, hx.at(ev.read_instant), sh.x_local);
      plan_.local_a[s].residual_into(b, sh.x_local, published_r);
    }
    hr.push(t, published_r);
    // Phase 2 -- correct and commit: each shard assembles its residual view
    // (foreign rows from its read-instant snapshot, own rows always the
    // fresh ones it just published), forms the full additive correction,
    // and commits its owned rows. Ownership is disjoint and reads come from
    // snapshots, so committing in event order is the joint per-instant
    // apply of the semi-async model.
    for (const ScheduleEvent& ev : inst) {
      const std::size_t s = ev.grid;
      if (killed[s]) continue;
      const Range rg = plan_.owned[s];
      ShardState& sh = st[s];
      sh.r_read = hr.at(ev.read_instant);
      std::copy(published_r.begin() + static_cast<std::ptrdiff_t>(rg.begin),
                published_r.begin() + static_cast<std::ptrdiff_t>(rg.end),
                sh.r_read.begin() + static_cast<std::ptrdiff_t>(rg.begin));
      std::fill(sh.staging.begin() + static_cast<std::ptrdiff_t>(rg.begin),
                sh.staging.begin() + static_cast<std::ptrdiff_t>(rg.end),
                0.0);
      corrector_.accumulate_cycle(sh.r_read, sh.staging, rg.begin, rg.end,
                                  sh.ws, sh.ctmp);
      for (std::size_t i = rg.begin; i < rg.end; ++i) x[i] += sh.staging[i];
      ++result.corrections[s];
      if (tel != nullptr) {
        tel->record_at(0, t, EventKind::kShardStep,
                       static_cast<std::int64_t>(s), 1);
        tel->record_at(0, t, EventKind::kShardExchange,
                       static_cast<std::int64_t>(s), ev.read_instant);
      }
    }
    ++t;
    hx.push(t, x);
    if (opts_.record_history) {
      result.rel_res_history.push_back(rel_res(b, x));
    }
  }

  result.instants = t;
  result.seconds = timer.seconds();
  result.final_rel_res = rel_res(b, x);
  return result;
}

ShardResult ShardedSolver::run_async(const Vector& b, Vector& x, bool bsp) {
  const std::size_t S = plan_.num_shards;
  Timer timer;

  ChannelTransportOptions to;
  to.num_shards = S;
  to.capacity = opts_.channel_capacity;
  to.latency_us = bsp ? 0.0 : opts_.latency_us;
  to.seed = opts_.seed;
  if (opts_.telemetry != nullptr) {
    to.metrics = &opts_.telemetry->metrics();
  }
  ChannelTransport transport(to);

  Vector r0;
  initial_residual(b, x, r0);

  std::vector<ShardState> st(S);
  for (std::size_t s = 0; s < S; ++s) {
    const Range rg = plan_.owned[s];
    st[s].x_local.resize(plan_.local_size(s));
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(rg.begin),
              x.begin() + static_cast<std::ptrdiff_t>(rg.end),
              st[s].x_local.begin());
    fill_ghosts(plan_, s, x, st[s].x_local);
    st[s].r_view = r0;
  }

  // Shared progress board: commits feed the staleness gate, dead marks a
  // shard that will never commit again (killed or finished) so peers must
  // not wait for it (Criterion-2 recovery). The slowest live shard never
  // waits, so neither the gate nor the BSP round waits can form a cycle.
  LocalPeerBoard board(S);
  std::vector<ShardWorkerResult> wr(S);

  auto shard_main = [&](std::size_t s) {
    ShardWorkerOptions wo;
    wo.shard = s;
    wo.t_max = opts_.t_max;
    wo.max_lag = opts_.max_lag;
    wo.bsp = bsp;
    wo.faults = opts_.faults;
    wo.telemetry = opts_.telemetry;
    wr[s] = run_shard_worker(plan_, corrector_, b, st[s].x_local,
                             st[s].r_view, transport, board, wo);
  };

  std::vector<std::thread> threads;
  threads.reserve(S);
  for (std::size_t s = 0; s < S; ++s) threads.emplace_back(shard_main, s);
  for (std::thread& th : threads) th.join();

  ShardResult result;
  result.corrections.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    const Range rg = plan_.owned[s];
    std::copy(st[s].x_local.begin(),
              st[s].x_local.begin() + static_cast<std::ptrdiff_t>(rg.size()),
              x.begin() + static_cast<std::ptrdiff_t>(rg.begin));
    result.corrections[s] = wr[s].corrections;
    result.reads_dropped += wr[s].reads_dropped;
    if (wr[s].killed) result.killed_shards.push_back(s);
  }
  result.packets_sent = transport.packets_sent();
  result.packets_dropped = transport.packets_dropped();
  result.seconds = timer.seconds();
  result.final_rel_res = rel_res(b, x);
  return result;
}

}  // namespace asyncmg
