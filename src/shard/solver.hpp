#pragma once
// ShardedSolver: executes (not simulates) multi-shard asynchronous additive
// multigrid -- the distributed extension the paper's conclusion points to,
// promoted from the discrete-event model in async/distributed.
//
// The fine grid is split into contiguous row blocks by the deterministic
// partitioner (shard/partition.hpp). Each shard owns its block of x and of
// the fine residual and computes its residual rows with the halo-aware
// local stencil; coarse levels are replicated per shard (in process they
// share the immutable MgSetup -- the multi-process seam would ship the
// serialized hierarchy instead), so every shard can form the full additive
// correction from its *view* of the global residual and commit only the
// rows it owns. This is the paper's global-res discipline across shard
// boundaries: a shard trusts its possibly-stale halo/residual view and
// never waits for anyone.
//
// Three execution disciplines, mirroring the async runtime's drivers:
//
//   kSynchronous   bulk-synchronous rounds with fresh exchanges -- replays
//                  the canonical full schedule; bitwise-identical to the
//                  single-shard run at ANY shard count (the oracle), and to
//                  replay_semiasync_schedule on the all-grids-fresh
//                  schedule for one shard.
//   kScripted      deterministic replay of a Schedule whose events are
//                  (shard, read-instant) pairs: a scheduled shard reads the
//                  ghost/residual snapshots of its read instant (its own
//                  rows are always current -- they live on the shard),
//                  corrections of an instant commit jointly. Bitwise
//                  reproducible across runs.
//   kAsynchronous  one free-running thread per shard over the lock-free
//                  channel transport: stale halos, dropped exchanges (full
//                  channels or FaultPlan drop-reads), Criterion-2 style
//                  recovery -- a killed shard's block simply stops moving
//                  and nobody deadlocks waiting for it.

#include <cstdint>

#include "async/schedule.hpp"
#include "multigrid/additive.hpp"
#include "shard/partition.hpp"
#include "shard/transport.hpp"

namespace asyncmg {

class TelemetrySink;

enum class ShardMode {
  kSynchronous,
  kAsynchronous,
  kScripted,
  /// Bulk-synchronous rounds executed over the Transport (one thread per
  /// shard, real message exchange, deterministic two-exchange rounds --
  /// shard/worker.hpp). Bitwise identical to kSynchronous at any shard
  /// count, and to the same discipline run across processes over TCP
  /// (src/net): this is the loopback oracle for the multi-process service.
  kSyncTransport,
};

std::string shard_mode_name(ShardMode m);

struct ShardOptions {
  std::size_t num_shards = 2;
  ShardMode mode = ShardMode::kSynchronous;
  /// Corrections (additive cycles) per shard.
  int t_max = 20;
  /// Channel transport: ring capacity per directed edge; a full ring drops
  /// the packet and the receiver keeps its stale view.
  std::size_t channel_capacity = 8;
  /// Mean one-way message latency in microseconds (async mode; visibility
  /// delay, the sender never blocks).
  double latency_us = 0.0;
  /// Async mode: bounded skew -- a shard runs at most max_lag corrections
  /// ahead of the slowest live peer (draining channels while it waits).
  /// Together with the newest-wins channels this realizes the Section-III
  /// bounded read delay (delta) at shard granularity; without it a shard
  /// that wins the thread-start race free-runs against the initial residual
  /// and convergence stalls (the divergence scenarios the scripted harness
  /// probes). Dead (killed / finished) peers are exempt, so Criterion-2
  /// recovery still holds, and the slowest live shard never waits, so the
  /// gate cannot deadlock.
  int max_lag = 3;
  /// kScripted: the interleaving to replay (events are (shard, read
  /// instant) pairs). Not owned; must outlive the call. When null, one is
  /// sampled with sample_schedule(num_shards, {script_alpha,
  /// script_max_delay, t_max, seed}) -- the Section-III randomness at shard
  /// granularity.
  const Schedule* schedule = nullptr;
  double script_alpha = 1.0;
  int script_max_delay = 0;
  std::uint64_t seed = 1;
  /// Fault injection (async mode; grid ids are shard ids): stalls sleep the
  /// shard, drop-reads skip a refresh (the shard keeps its stale halo),
  /// kills retire the shard permanently. Not owned; must outlive the call.
  const FaultPlan* faults = nullptr;
  /// Record ||b - A x||/||b|| after every instant (scripted/sync; one
  /// global SpMV per instant).
  bool record_history = false;
  /// Telemetry sink: scripted/sync record logical-time events from tid 0
  /// (deterministic traces); async records per-shard wall-time events on
  /// tid = shard, displayed on per-shard trace tracks. Not owned.
  TelemetrySink* telemetry = nullptr;

  /// Throws std::invalid_argument with a field-naming message on the first
  /// invalid setting.
  void validate() const;
};

struct ShardResult {
  double final_rel_res = 1.0;
  double seconds = 0.0;
  /// Time instants executed (scripted/sync; 0 for async).
  int instants = 0;
  std::vector<int> corrections;  // per shard
  /// Channel transport counters (async mode).
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  /// FaultPlan drop-read refreshes skipped.
  int reads_dropped = 0;
  std::vector<std::size_t> killed_shards;
  std::vector<double> rel_res_history;
  double mean_corrections() const;
  /// Compact JSON object: mode-independent solve facts plus the transport
  /// counters (packets sent / dropped, drop-read count) that used to live
  /// only in these fields.
  std::string to_json() const;
};

class ShardedSolver {
 public:
  /// Validates `so` and builds the partition plan for setup's fine matrix.
  ShardedSolver(const MgSetup& setup, AdditiveOptions ao, ShardOptions so);

  const ShardPlan& plan() const { return plan_; }
  const ShardOptions& options() const { return opts_; }

  /// Solves A x = b with t_max corrections per shard; x is updated in
  /// place (full-length global vector).
  ShardResult solve(const Vector& b, Vector& x);

 private:
  ShardResult run_scripted(const Schedule& sched, const Vector& b, Vector& x);
  /// One thread per shard over a ChannelTransport; `bsp` selects the
  /// deterministic bulk-synchronous rounds (kSyncTransport) instead of the
  /// free-running discipline (kAsynchronous).
  ShardResult run_async(const Vector& b, Vector& x, bool bsp);
  /// Initial residual b - A x assembled from the per-shard local stencils
  /// (bitwise equal to the global residual when ghosts are fresh).
  void initial_residual(const Vector& b, const Vector& x, Vector& r) const;
  double rel_res(const Vector& b, const Vector& x) const;

  const MgSetup* setup_;
  AdditiveCorrector corrector_;
  ShardOptions opts_;
  ShardPlan plan_;
};

}  // namespace asyncmg
