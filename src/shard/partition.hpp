#pragma once
// Deterministic row-block domain partitioner for the sharded solver.
//
// The fine grid is split into `num_shards` contiguous row blocks balanced
// by nonzeros (util/partition's nnz_balanced_chunks over the CSR row
// pointer, the same policy the solve-phase thread chunking uses), and for
// each shard the plan precomputes everything the halo exchange needs:
//
//   * the sorted global indices of the shard's ghost (halo) entries -- the
//     columns its rows reference but does not own;
//   * per peer, the send list (owned indices some peer reads) and the
//     matching ghost slots on the receiving side, index-aligned so a packed
//     payload round-trips without any per-message index traffic;
//   * a LocalStencil of the shard's matrix rows in the local
//     [owned; ghosts] numbering (sparse/halo.hpp), preserving global
//     in-row order so local kernels are bitwise equal to global ones.
//
// The plan depends only on the matrix sparsity and the shard count, so the
// same inputs always produce the same placement (scripted multi-shard runs
// stay reproducible).

#include <vector>

#include "sparse/halo.hpp"
#include "util/partition.hpp"

namespace asyncmg {

struct ShardPlan {
  std::size_t num_shards = 1;
  Index n = 0;  // fine rows == fine cols
  /// Contiguous owned row range per shard; ranges cover [0, n) disjointly.
  std::vector<Range> owned;
  /// Per shard: sorted global indices of its ghost entries (columns read
  /// but not owned). Ghost g of shard s lives at local index
  /// owned[s].size() + (position of g in halo[s]).
  std::vector<std::vector<Index>> halo;
  /// send[s][p]: sorted global indices owned by s that shard p reads
  /// (equals halo[p] restricted to owned[s] -- the round-trip identity the
  /// tests check).
  std::vector<std::vector<std::vector<Index>>> send;
  /// ghost_slots[s][p]: local indices (into shard s's [owned; ghosts]
  /// vector) of the entries received from p, aligned with send[p][s].
  std::vector<std::vector<std::vector<std::size_t>>> ghost_slots;
  /// Shard-local matrix rows (local column numbering, global in-row order).
  std::vector<LocalStencil> local_a;

  std::size_t owner_of(Index row) const;
  std::size_t local_size(std::size_t s) const {
    return owned[s].size() + halo[s].size();
  }
  /// Total ghost entries across shards (the per-cycle halo traffic in
  /// doubles, counted once per reader).
  std::size_t total_halo() const;
};

/// Builds the plan for `a` (square fine matrix). `num_shards` must be >= 1
/// and <= rows; throws std::invalid_argument otherwise.
ShardPlan make_shard_plan(const CsrMatrix& a, std::size_t num_shards);

}  // namespace asyncmg
