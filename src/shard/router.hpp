#pragma once
// Consistent-hash front-end router over N SolveService backends.
//
// Requests are routed by matrix fingerprint on a consistent-hash ring:
// every backend owns `vnodes_per_backend` virtual nodes (FNV-1a of
// "backend:vnode"), a key maps to the first vnode clockwise from its hash,
// and adding or removing one backend remaps only ~1/(N+1) of the key space
// -- so the per-backend HierarchyCaches keep their warm setups across
// cluster resizes. The same matrix always lands on the same backend (cache
// affinity), and a backend that sheds load (ServiceOverloaded) is walked
// past to the next distinct backend on the ring rather than failing the
// request.
//
// The ring math lives in free functions so the placement policy is testable
// without spinning up services.

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/fingerprint.hpp"
#include "service/solve_service.hpp"

namespace asyncmg {

/// One virtual node: `hash` position on the ring, owned by `backend`.
struct RingNode {
  std::uint64_t hash = 0;
  std::size_t backend = 0;
  friend bool operator==(const RingNode&, const RingNode&) = default;
};

/// Builds the sorted vnode ring for `num_backends` backends. Deterministic
/// in (num_backends, vnodes_per_backend, seed).
std::vector<RingNode> build_hash_ring(std::size_t num_backends,
                                      std::size_t vnodes_per_backend,
                                      std::uint64_t seed = 0);

/// First vnode clockwise from `key` (wrapping); the owning backend id.
std::size_t ring_lookup(const std::vector<RingNode>& ring, std::uint64_t key);

/// Ring key of a matrix fingerprint (rehash of the content hash + shape so
/// ring position is decorrelated from the cache key).
std::uint64_t ring_key(const MatrixFingerprint& fp);

struct ShardRouterOptions {
  std::size_t num_backends = 2;
  std::size_t vnodes_per_backend = 64;
  std::uint64_t ring_seed = 0;
  /// Configuration applied to every backend service.
  ServiceOptions service;

  /// Throws std::invalid_argument with a field-naming message on the first
  /// invalid setting.
  void validate() const;
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions opts);

  std::size_t num_backends() const { return backends_.size(); }
  const std::vector<RingNode>& ring() const { return ring_; }

  /// Backend the ring assigns to this matrix (no failover applied).
  std::size_t backend_of(const CsrMatrix& a) const;

  /// Routes to backend_of(a); on ServiceOverloaded walks clockwise to the
  /// next distinct backend, failing only when every backend sheds the
  /// request (the last ServiceOverloaded propagates).
  std::future<SolveResponse> submit(CsrMatrix a, Vector b,
                                    RequestOptions ropts = {});

  /// Batched solve on the matrix's home backend (no admission control, no
  /// failover).
  std::vector<BatchResult> solve_batch(const CsrMatrix& a,
                                       const std::vector<Vector>& rhs,
                                       BatchOptions bopts = {});

  /// Direct access for tests and for draining.
  SolveService& backend(std::size_t i) { return *backends_[i]; }

  /// Merged stats: router counters, summed backend totals, and the
  /// per-backend ServiceStats JSON spliced in verbatim.
  std::string stats_json() const;

 private:
  ShardRouterOptions opts_;
  std::vector<std::unique_ptr<SolveService>> backends_;
  std::vector<RingNode> ring_;
  mutable std::mutex mu_;
  std::uint64_t routed_ = 0;
  std::uint64_t failovers_ = 0;
  std::vector<std::uint64_t> routed_per_backend_;
};

}  // namespace asyncmg
