#pragma once
// Pluggable point-to-point transport for the sharded executor's halo
// exchange. The executor only ever talks to this interface, so an
// out-of-process (socket) transport can slot in later without touching the
// solver; the in-process implementation below is the one the tests and the
// TSan CI job exercise today.
//
// ChannelTransport gives every directed (from, to, tag) edge its own
// bounded single-producer/single-consumer ring: the producer is the
// sending shard's thread, the consumer the receiving shard's thread, and
// the only synchronization is one release store / acquire load pair per
// packet -- lock-free and TSan-clean by construction. A full ring DROPS the
// packet (counted, never blocking): the receiver simply keeps its stale
// ghost view, which is exactly the lost-message semantics the paper's
// Criterion-2 recovery and the FaultPlan drop-read harness model.
//
// An optional mean one-way latency delays *visibility*, not the sender:
// packets carry a deadline and recv_latest ignores packets still in
// flight. Latency is sampled per packet from U[0.5, 1.5] * latency with a
// deterministic per-edge RNG, mirroring async/distributed's cost model.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace asyncmg {

class Counter;
class MetricsRegistry;

struct HaloPacket {
  /// Sender's commit count when the packet was published (staleness probe).
  std::uint64_t seq = 0;
  std::vector<double> data;
};

/// Payload kinds multiplexed over one shard pair.
enum class HaloTag : int { kBoundaryX = 0, kResidualBlock = 1 };
inline constexpr int kNumHaloTags = 2;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues a packet from shard `from` to shard `to`. Returns false when
  /// the channel is full and the packet was dropped.
  virtual bool send(std::size_t from, std::size_t to, HaloTag tag,
                    HaloPacket&& p) = 0;

  /// Pops every deliverable packet on the edge and returns the newest in
  /// `out`; false when nothing (new) is deliverable. Packets whose latency
  /// deadline has not passed stay queued.
  virtual bool recv_latest(std::size_t to, std::size_t from, HaloTag tag,
                           HaloPacket& out) = 0;

  /// Pops the OLDEST deliverable packet on the edge (FIFO order); false when
  /// nothing is deliverable. The bulk-synchronous discipline consumes edges
  /// with this one packet per round, so a fast sender can never overwrite a
  /// round's exchange before the receiver reads it -- the property that
  /// makes BSP over any transport deterministic.
  virtual bool recv_next(std::size_t to, std::size_t from, HaloTag tag,
                         HaloPacket& out) = 0;

  virtual std::uint64_t packets_sent() const = 0;
  virtual std::uint64_t packets_dropped() const = 0;
};

struct ChannelTransportOptions {
  std::size_t num_shards = 1;
  /// Ring capacity per directed edge and tag (packets).
  std::size_t capacity = 8;
  /// Mean one-way latency in microseconds; 0 = immediately visible.
  double latency_us = 0.0;
  std::uint64_t seed = 1;
  /// Optional metrics registry: when set, sends and drops are also counted
  /// on the "shard.transport.packets_sent" / ".packets_dropped" counters,
  /// so transport health shows up in every stats JSON that merges the
  /// registry (SolveService::stats_json, router stats). Not owned; must
  /// outlive the transport. nullptr = counters local to the transport only.
  MetricsRegistry* metrics = nullptr;
};

class ChannelTransport final : public Transport {
 public:
  explicit ChannelTransport(ChannelTransportOptions opts);

  bool send(std::size_t from, std::size_t to, HaloTag tag,
            HaloPacket&& p) override;
  bool recv_latest(std::size_t to, std::size_t from, HaloTag tag,
                   HaloPacket& out) override;
  bool recv_next(std::size_t to, std::size_t from, HaloTag tag,
                 HaloPacket& out) override;

  std::uint64_t packets_sent() const override {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_dropped() const override {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    HaloPacket packet;
    Clock::time_point deliver_at;
  };
  /// Bounded SPSC ring: `tail` is produced-count (written by the sender
  /// with a release store), `head` consumed-count (written by the receiver
  /// with a release store); each side reads the other's counter with an
  /// acquire load before touching slots.
  struct Edge {
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> tail{0};
    /// Latency sampling is producer-side state (SPSC: only the sender
    /// touches it).
    Rng rng{1};
  };

  Edge& edge(std::size_t from, std::size_t to, HaloTag tag) {
    return *edges_[(from * opts_.num_shards + to) * kNumHaloTags +
                   static_cast<std::size_t>(tag)];
  }

  ChannelTransportOptions opts_;
  std::vector<std::unique_ptr<Edge>> edges_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  /// Registry counters resolved once at construction (hot-path updates are
  /// one relaxed fetch_add); null when opts_.metrics is null.
  Counter* metric_sent_ = nullptr;
  Counter* metric_dropped_ = nullptr;
};

}  // namespace asyncmg
