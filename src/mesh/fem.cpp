// FEM problem generators substituting the paper's MFEM test sets:
// Laplace on a sphere (hex8 on a sphere-masked grid) and multi-material
// cantilever-beam linear elasticity.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "mesh/grid3d.hpp"
#include "mesh/hex8.hpp"
#include "mesh/problems.hpp"

namespace asyncmg {

Problem make_fem_laplace_sphere(Index n) {
  if (n < 4) throw std::invalid_argument("sphere mesh needs n >= 4");
  // Node grid spans [-1,1]^3; elements whose center lies inside the unit
  // sphere are kept.
  const Grid3D nodes{n, n, n};
  const Index ne = n - 1;  // elements per axis
  const Grid3D elems{ne, ne, ne};
  const double h = 2.0 / static_cast<double>(n - 1);

  std::vector<char> kept(static_cast<std::size_t>(elems.size()), 0);
  for (Index k = 0; k < ne; ++k) {
    for (Index j = 0; j < ne; ++j) {
      for (Index i = 0; i < ne; ++i) {
        const double cx = -1.0 + h * (static_cast<double>(i) + 0.5);
        const double cy = -1.0 + h * (static_cast<double>(j) + 0.5);
        const double cz = -1.0 + h * (static_cast<double>(k) + 0.5);
        if (cx * cx + cy * cy + cz * cz <= 1.0) {
          kept[static_cast<std::size_t>(elems.id(i, j, k))] = 1;
        }
      }
    }
  }

  // Count kept elements touching each node; interior nodes touch all 8.
  std::vector<std::uint8_t> touch(static_cast<std::size_t>(nodes.size()), 0);
  auto for_each_elem_node = [&](Index ei, Index ej, Index ek, auto&& fn) {
    for (Index dk = 0; dk <= 1; ++dk) {
      for (Index dj = 0; dj <= 1; ++dj) {
        for (Index di = 0; di <= 1; ++di) {
          fn(nodes.id(ei + di, ej + dj, ek + dk));
        }
      }
    }
  };
  for (Index k = 0; k < ne; ++k) {
    for (Index j = 0; j < ne; ++j) {
      for (Index i = 0; i < ne; ++i) {
        if (!kept[static_cast<std::size_t>(elems.id(i, j, k))]) continue;
        for_each_elem_node(i, j, k,
                           [&](Index nid) { ++touch[static_cast<std::size_t>(nid)]; });
      }
    }
  }

  // Free dofs: nodes fully surrounded by kept elements (touch == 8). All
  // other touched nodes sit on the curved surface -> homogeneous Dirichlet.
  std::vector<Index> dof(static_cast<std::size_t>(nodes.size()), -1);
  Index ndof = 0;
  for (Index nid = 0; nid < nodes.size(); ++nid) {
    if (touch[static_cast<std::size_t>(nid)] == 8) {
      dof[static_cast<std::size_t>(nid)] = ndof++;
    }
  }
  if (ndof == 0) throw std::runtime_error("sphere mesh produced no free dofs");

  const auto ke = hex8_laplace_stiffness(h, h, h, 1.0);
  std::vector<Triplet> trips;
  trips.reserve(static_cast<std::size_t>(ndof) * 27);
  Index enodes[8];
  for (Index k = 0; k < ne; ++k) {
    for (Index j = 0; j < ne; ++j) {
      for (Index i = 0; i < ne; ++i) {
        if (!kept[static_cast<std::size_t>(elems.id(i, j, k))]) continue;
        int idx = 0;
        for_each_elem_node(i, j, k, [&](Index nid) { enodes[idx++] = nid; });
        for (int a = 0; a < 8; ++a) {
          const Index ra = dof[static_cast<std::size_t>(enodes[a])];
          if (ra < 0) continue;
          for (int b = 0; b < 8; ++b) {
            const Index rb = dof[static_cast<std::size_t>(enodes[b])];
            if (rb < 0) continue;
            trips.push_back({ra, rb,
                             ke[static_cast<std::size_t>(a)]
                               [static_cast<std::size_t>(b)]});
          }
        }
      }
    }
  }
  Problem p;
  p.name = "mfem-laplace";
  p.grid_length = n;
  p.a = CsrMatrix::from_triplets(ndof, ndof, std::move(trips));
  return p;
}

Problem make_elasticity_beam(Index nx, Index ny, Index nz) {
  if (nx < 2 || ny < 1 || nz < 1) {
    throw std::invalid_argument("beam needs nx >= 2, ny/nz >= 1");
  }
  const Grid3D nodes{nx + 1, ny + 1, nz + 1};
  // Clamped face at x=0: all three displacement components fixed.
  std::vector<Index> dof(static_cast<std::size_t>(nodes.size()), -1);
  Index nfree_nodes = 0;
  for (Index k = 0; k <= nz; ++k) {
    for (Index j = 0; j <= ny; ++j) {
      for (Index i = 0; i <= nx; ++i) {
        if (i == 0) continue;  // Dirichlet
        dof[static_cast<std::size_t>(nodes.id(i, j, k))] = nfree_nodes++;
      }
    }
  }
  const Index ndof = 3 * nfree_nodes;

  // Two isotropic materials along the beam: stiff near the clamp, 100x
  // softer toward the tip (the paper's multi-material cantilever).
  const Lame mat1 = lame_from_young_poisson(1.0, 0.3);
  const Lame mat2 = lame_from_young_poisson(0.01, 0.3);
  const auto ke1 = hex8_elasticity_stiffness(1.0, 1.0, 1.0, mat1.lambda, mat1.mu);
  const auto ke2 = hex8_elasticity_stiffness(1.0, 1.0, 1.0, mat2.lambda, mat2.mu);

  std::vector<Triplet> trips;
  trips.reserve(static_cast<std::size_t>(ndof) * 81);
  for (Index ek = 0; ek < nz; ++ek) {
    for (Index ej = 0; ej < ny; ++ej) {
      for (Index ei = 0; ei < nx; ++ei) {
        const auto& ke = (ei < nx / 2) ? ke1 : ke2;
        Index enodes[8];
        int idx = 0;
        for (Index dk = 0; dk <= 1; ++dk) {
          for (Index dj = 0; dj <= 1; ++dj) {
            for (Index di = 0; di <= 1; ++di) {
              enodes[idx++] = nodes.id(ei + di, ej + dj, ek + dk);
            }
          }
        }
        for (int a = 0; a < 8; ++a) {
          const Index na = dof[static_cast<std::size_t>(enodes[a])];
          if (na < 0) continue;
          for (int b = 0; b < 8; ++b) {
            const Index nb = dof[static_cast<std::size_t>(enodes[b])];
            if (nb < 0) continue;
            for (int ci = 0; ci < 3; ++ci) {
              for (int cj = 0; cj < 3; ++cj) {
                trips.push_back(
                    {3 * na + ci, 3 * nb + cj,
                     ke[static_cast<std::size_t>(3 * a + ci)]
                       [static_cast<std::size_t>(3 * b + cj)]});
              }
            }
          }
        }
      }
    }
  }
  Problem p;
  p.name = "mfem-elasticity";
  p.grid_length = nx;
  p.a = CsrMatrix::from_triplets(ndof, ndof, std::move(trips));
  return p;
}

std::string test_set_name(TestSet s) {
  switch (s) {
    case TestSet::kFD7pt:
      return "7pt";
    case TestSet::kFD27pt:
      return "27pt";
    case TestSet::kFemLaplace:
      return "mfem-laplace";
    case TestSet::kFemElasticity:
      return "mfem-elasticity";
  }
  return "unknown";
}

Problem make_problem(TestSet set, Index n) {
  switch (set) {
    case TestSet::kFD7pt:
      return make_laplace_7pt(n);
    case TestSet::kFD27pt:
      return make_laplace_27pt(n);
    case TestSet::kFemLaplace:
      return make_fem_laplace_sphere(n);
    case TestSet::kFemElasticity:
      return make_elasticity_beam(n, std::max<Index>(3, n / 3),
                                  std::max<Index>(3, n / 3));
  }
  throw std::invalid_argument("unknown test set");
}

}  // namespace asyncmg
