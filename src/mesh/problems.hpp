#pragma once
// Test-problem generators reproducing the paper's four matrix sets
// (Section V). The MFEM-generated sets are substituted by from-scratch
// finite element assembly (see DESIGN.md section 2):
//
//   7pt / 27pt      - 3D Laplace on a cube, centered differences, Dirichlet
//                     boundaries eliminated. Row/nnz counts match the paper
//                     exactly (e.g. 27pt at 30^3: 27000 rows, 681472 nnz).
//   MFEM Laplace    - Laplace on a sphere: trilinear hexahedral (hex8) FEM
//                     on a sphere-masked structured grid (substitutes the
//                     NURBS sphere mesh: curved boundary, irregular rows).
//   MFEM Elasticity - multi-material cantilever beam: 3D linear elasticity,
//                     hex8 elements, 3 dofs/node, clamped at x=0, two
//                     materials along the beam length.

#include <string>

#include "sparse/csr.hpp"

namespace asyncmg {

/// A generated linear system's matrix plus identification metadata.
struct Problem {
  std::string name;
  CsrMatrix a;
  /// Characteristic grid length (the paper's x-axis in Figs. 1-5).
  Index grid_length = 0;
};

/// 7-point Laplacian on an n x n x n interior grid, Dirichlet boundary.
Problem make_laplace_7pt(Index n);

/// 27-point Laplacian (all 26 neighbors) on an n x n x n interior grid.
Problem make_laplace_27pt(Index n);

/// Anisotropic 7-point Laplacian (eps * d_xx + d_yy + d_zz); stresses AMG
/// coarsening beyond the paper's isotropic sets.
Problem make_laplace_7pt_anisotropic(Index n, double eps_x);

/// Jumping-coefficient 7-point diffusion: coefficient `contrast` inside the
/// centered cube spanning the middle third of each axis, 1 outside. The
/// flux between cells uses the harmonic mean, so the matrix stays symmetric
/// and an M-matrix; classic AMG robustness test beyond the paper's sets.
Problem make_laplace_7pt_jump(Index n, double contrast);

/// FEM Laplace on (approximately) the unit sphere; `n` is the number of
/// grid points per axis of the bounding box before masking.
Problem make_fem_laplace_sphere(Index n);

/// Linear elasticity cantilever beam with `nx x ny x nz` hex elements;
/// the x in [0, nx/2) half is material 1 (stiff), the rest material 2.
/// Returns 3 dofs per free node.
Problem make_elasticity_beam(Index nx, Index ny, Index nz);

/// The paper's four named test sets.
enum class TestSet { kFD7pt, kFD27pt, kFemLaplace, kFemElasticity };

std::string test_set_name(TestSet s);

/// Builds a test-set member with characteristic length `n`. For the beam,
/// `n` is interpreted as elements along the beam (cross-section n/4 x n/4,
/// clamped to >= 2).
Problem make_problem(TestSet set, Index n);

}  // namespace asyncmg
