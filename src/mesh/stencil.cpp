// Finite-difference Laplacian generators (7pt, 27pt, anisotropic 7pt).

#include <array>
#include <stdexcept>
#include <vector>

#include "mesh/grid3d.hpp"
#include "mesh/problems.hpp"

namespace asyncmg {

namespace {

/// Assembles a stencil operator on the interior n x n x n grid with
/// homogeneous Dirichlet boundaries (boundary points eliminated).
/// `offsets` lists (di, dj, dk, weight) including the center.
Problem assemble_stencil(const std::string& name, Index n,
                         const std::vector<std::array<double, 4>>& offsets) {
  const Grid3D g{n, n, n};
  std::vector<Triplet> trips;
  trips.reserve(static_cast<std::size_t>(g.size()) * offsets.size());
  for (Index k = 0; k < n; ++k) {
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) {
        const Index row = g.id(i, j, k);
        for (const auto& off : offsets) {
          const Index ii = i + static_cast<Index>(off[0]);
          const Index jj = j + static_cast<Index>(off[1]);
          const Index kk = k + static_cast<Index>(off[2]);
          if (!g.inside(ii, jj, kk)) continue;  // Dirichlet: drop
          trips.push_back({row, g.id(ii, jj, kk), off[3]});
        }
      }
    }
  }
  Problem p;
  p.name = name;
  p.grid_length = n;
  p.a = CsrMatrix::from_triplets(g.size(), g.size(), std::move(trips));
  return p;
}

}  // namespace

Problem make_laplace_7pt(Index n) {
  std::vector<std::array<double, 4>> offsets = {
      {0, 0, 0, 6.0},  {1, 0, 0, -1.0}, {-1, 0, 0, -1.0}, {0, 1, 0, -1.0},
      {0, -1, 0, -1.0}, {0, 0, 1, -1.0}, {0, 0, -1, -1.0}};
  return assemble_stencil("7pt", n, offsets);
}

Problem make_laplace_27pt(Index n) {
  std::vector<std::array<double, 4>> offsets;
  offsets.reserve(27);
  for (int dk = -1; dk <= 1; ++dk) {
    for (int dj = -1; dj <= 1; ++dj) {
      for (int di = -1; di <= 1; ++di) {
        const bool center = di == 0 && dj == 0 && dk == 0;
        offsets.push_back({static_cast<double>(di), static_cast<double>(dj),
                           static_cast<double>(dk), center ? 26.0 : -1.0});
      }
    }
  }
  return assemble_stencil("27pt", n, offsets);
}

Problem make_laplace_7pt_jump(Index n, double contrast) {
  if (contrast <= 0.0) {
    throw std::invalid_argument("jump contrast must be positive");
  }
  const Grid3D g{n, n, n};
  auto kappa = [&](Index i, Index j, Index k) {
    const Index lo = n / 3, hi = 2 * n / 3;
    const bool inside = i >= lo && i < hi && j >= lo && j < hi && k >= lo &&
                        k < hi;
    return inside ? contrast : 1.0;
  };
  // Face coefficient between two cells: harmonic mean (standard for
  // discontinuous diffusion).
  auto face = [&](Index i0, Index j0, Index k0, Index i1, Index j1,
                  Index k1) {
    const double a = kappa(i0, j0, k0), b = kappa(i1, j1, k1);
    return 2.0 * a * b / (a + b);
  };
  std::vector<Triplet> trips;
  trips.reserve(static_cast<std::size_t>(g.size()) * 7);
  const int off[6][3] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                         {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
  for (Index k = 0; k < n; ++k) {
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) {
        const Index row = g.id(i, j, k);
        double diag = 0.0;
        for (const auto& d : off) {
          const Index ii = i + d[0], jj = j + d[1], kk = k + d[2];
          if (g.inside(ii, jj, kk)) {
            const double c = face(i, j, k, ii, jj, kk);
            trips.push_back({row, g.id(ii, jj, kk), -c});
            diag += c;
          } else {
            diag += kappa(i, j, k);  // Dirichlet face uses the cell value
          }
        }
        trips.push_back({row, row, diag});
      }
    }
  }
  Problem p;
  p.name = "7pt-jump";
  p.grid_length = n;
  p.a = CsrMatrix::from_triplets(g.size(), g.size(), std::move(trips));
  return p;
}

Problem make_laplace_7pt_anisotropic(Index n, double eps_x) {
  std::vector<std::array<double, 4>> offsets = {
      {0, 0, 0, 2.0 * eps_x + 4.0},
      {1, 0, 0, -eps_x},
      {-1, 0, 0, -eps_x},
      {0, 1, 0, -1.0},
      {0, -1, 0, -1.0},
      {0, 0, 1, -1.0},
      {0, 0, -1, -1.0}};
  return assemble_stencil("7pt-aniso", n, offsets);
}

}  // namespace asyncmg
