#pragma once
// Structured 3D grid indexing shared by the stencil and FEM generators.

#include "sparse/types.hpp"

namespace asyncmg {

/// Lexicographic indexing of an nx x ny x nz point grid (x fastest).
struct Grid3D {
  Index nx = 0, ny = 0, nz = 0;

  Index size() const { return nx * ny * nz; }

  Index id(Index i, Index j, Index k) const {
    return i + nx * (j + ny * k);
  }

  bool inside(Index i, Index j, Index k) const {
    return i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz;
  }
};

}  // namespace asyncmg
