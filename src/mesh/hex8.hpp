#pragma once
// Trilinear hexahedral (hex8) element kernels: stiffness matrices for the
// Laplace operator and for isotropic linear elasticity, integrated with
// 2x2x2 Gauss quadrature on an axis-aligned box element. These are the
// building blocks of the MFEM-substitute FEM generators.

#include <array>

namespace asyncmg {

/// 8x8 Laplace stiffness for a box element with edge lengths hx, hy, hz and
/// scalar diffusion coefficient `kappa`.
/// K_ab = kappa * integral( grad(phi_a) . grad(phi_b) ).
std::array<std::array<double, 8>, 8> hex8_laplace_stiffness(double hx,
                                                            double hy,
                                                            double hz,
                                                            double kappa);

/// 24x24 isotropic linear elasticity stiffness for a box element
/// (3 dofs per node, node-major ordering: dof = 3*node + component) with
/// Lame parameters lambda and mu.
std::array<std::array<double, 24>, 24> hex8_elasticity_stiffness(
    double hx, double hy, double hz, double lambda, double mu);

/// Lame parameters from Young's modulus E and Poisson ratio nu.
struct Lame {
  double lambda = 0.0;
  double mu = 0.0;
};
Lame lame_from_young_poisson(double young, double poisson);

}  // namespace asyncmg
