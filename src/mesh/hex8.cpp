#include "mesh/hex8.hpp"

#include <cmath>

namespace asyncmg {

namespace {

// Reference-node coordinates of the hex8 element in [-1,1]^3; node ordering
// matches the grid generators: x fastest, then y, then z.
constexpr double kNode[8][3] = {
    {-1, -1, -1}, {1, -1, -1}, {-1, 1, -1}, {1, 1, -1},
    {-1, -1, 1},  {1, -1, 1},  {-1, 1, 1},  {1, 1, 1}};

// 2-point Gauss abscissa.
const double kGauss = 1.0 / std::sqrt(3.0);

/// Gradient of the trilinear shape function `a` at reference point (x,y,z),
/// with respect to reference coordinates.
void shape_grad(int a, double x, double y, double z, double grad[3]) {
  const double sx = kNode[a][0], sy = kNode[a][1], sz = kNode[a][2];
  grad[0] = 0.125 * sx * (1 + sy * y) * (1 + sz * z);
  grad[1] = 0.125 * (1 + sx * x) * sy * (1 + sz * z);
  grad[2] = 0.125 * (1 + sx * x) * (1 + sy * y) * sz;
}

}  // namespace

std::array<std::array<double, 8>, 8> hex8_laplace_stiffness(double hx,
                                                            double hy,
                                                            double hz,
                                                            double kappa) {
  std::array<std::array<double, 8>, 8> ke{};
  // Axis-aligned box: diagonal Jacobian h/2 per axis.
  const double jac[3] = {hx / 2.0, hy / 2.0, hz / 2.0};
  const double detj = jac[0] * jac[1] * jac[2];
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      for (int gz = 0; gz < 2; ++gz) {
        const double px = (gx ? kGauss : -kGauss);
        const double py = (gy ? kGauss : -kGauss);
        const double pz = (gz ? kGauss : -kGauss);
        double grads[8][3];
        for (int a = 0; a < 8; ++a) {
          shape_grad(a, px, py, pz, grads[a]);
          // Physical gradient: divide by Jacobian per axis.
          for (int d = 0; d < 3; ++d) grads[a][d] /= jac[d];
        }
        for (int a = 0; a < 8; ++a) {
          for (int b = 0; b < 8; ++b) {
            double dotg = 0.0;
            for (int d = 0; d < 3; ++d) dotg += grads[a][d] * grads[b][d];
            ke[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] +=
                kappa * dotg * detj;  // Gauss weights are all 1
          }
        }
      }
    }
  }
  return ke;
}

std::array<std::array<double, 24>, 24> hex8_elasticity_stiffness(
    double hx, double hy, double hz, double lambda, double mu) {
  std::array<std::array<double, 24>, 24> ke{};
  const double jac[3] = {hx / 2.0, hy / 2.0, hz / 2.0};
  const double detj = jac[0] * jac[1] * jac[2];
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      for (int gz = 0; gz < 2; ++gz) {
        const double px = (gx ? kGauss : -kGauss);
        const double py = (gy ? kGauss : -kGauss);
        const double pz = (gz ? kGauss : -kGauss);
        double g[8][3];
        for (int a = 0; a < 8; ++a) {
          shape_grad(a, px, py, pz, g[a]);
          for (int d = 0; d < 3; ++d) g[a][d] /= jac[d];
        }
        // K(ai, bj) += lambda g_a[i] g_b[j] + mu g_a[j] g_b[i]
        //            + mu delta_ij (g_a . g_b)   (standard isotropic form)
        for (int a = 0; a < 8; ++a) {
          for (int b = 0; b < 8; ++b) {
            double dotg = 0.0;
            for (int d = 0; d < 3; ++d) dotg += g[a][d] * g[b][d];
            for (int i = 0; i < 3; ++i) {
              for (int j = 0; j < 3; ++j) {
                double v = lambda * g[a][i] * g[b][j] + mu * g[a][j] * g[b][i];
                if (i == j) v += mu * dotg;
                ke[static_cast<std::size_t>(3 * a + i)]
                  [static_cast<std::size_t>(3 * b + j)] += v * detj;
              }
            }
          }
        }
      }
    }
  }
  return ke;
}

Lame lame_from_young_poisson(double young, double poisson) {
  Lame l;
  l.lambda = young * poisson / ((1 + poisson) * (1 - 2 * poisson));
  l.mu = young / (2 * (1 + poisson));
  return l;
}

}  // namespace asyncmg
