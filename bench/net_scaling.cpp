// Multi-process solver service bench + CI smoke gate. Unlike shard_scaling
// (threads in one process), this harness fork/execs REAL asyncmg_workerd
// processes on ephemeral loopback ports and drives them through the
// ClusterCoordinator, so the wire protocol, the relay, and the
// process-fault-tolerant control plane are all exercised end to end.
//
// Three hard gates run before any measurement (each exits 1 on failure):
//
//   1. BSP identity: the multi-process bulk-synchronous solve is bitwise
//      identical to the in-process single-shard oracle at every worker count.
//   2. Deterministic crash: worker 1 drops its connection after 3
//      corrections (the crash_after hook); the survivors must finish every
//      round with the dead shard frozen (Criterion-2) and a bounded residual.
//   3. Real kill: a worker process is SIGKILLed mid-solve; the coordinator
//      must detect the dead peer and return normally -- never hang. The kill
//      is timed, so the harness escalates t_max until it lands mid-solve.
//
// Then a worker-count x problem-size sweep reports wall time, residual, and
// wire traffic (bytes per correction). --json writes the machine-readable
// summary (default BENCH_net.json); --smoke shrinks everything for CI.
// --trace-dir / --log-dir collect per-worker Chrome traces and stderr logs
// as CI artifacts.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/cluster.hpp"
#include "shard/solver.hpp"
#include "util/timer.hpp"

namespace asyncmg {
namespace {

struct WorkerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::string name;
};

/// fork/exec one asyncmg_workerd with --port 0, parse "LISTENING <port>"
/// from its stdout (the binary's harness contract), optionally redirect
/// stderr to a log file and request a Chrome trace. Exits the bench on any
/// spawn failure -- a worker that cannot start is not a measurable result.
WorkerProc spawn_workerd(const std::string& bin, const std::string& name,
                         const std::string& trace_dir,
                         const std::string& log_dir) {
  int out[2];
  if (pipe(out) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    dup2(out[1], STDOUT_FILENO);
    close(out[0]);
    close(out[1]);
    if (!log_dir.empty()) {
      const std::string log = log_dir + "/" + name + ".log";
      const int fd = open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        dup2(fd, STDERR_FILENO);
        close(fd);
      }
    }
    std::vector<std::string> args = {bin, "--port", "0", "--name", name};
    if (!trace_dir.empty()) {
      args.push_back("--trace");
      args.push_back(trace_dir + "/" + name + ".trace.json");
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(bin.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  close(out[1]);

  // Read the announcement line (poll-bounded so a broken binary cannot hang
  // the bench).
  std::string line;
  char c = 0;
  while (true) {
    pollfd pfd{out[0], POLLIN, 0};
    if (poll(&pfd, 1, 10000) <= 0) break;
    const ssize_t n = read(out[0], &c, 1);
    if (n <= 0 || c == '\n') break;
    line.push_back(c);
  }
  close(out[0]);
  WorkerProc w;
  w.pid = pid;
  w.name = name;
  if (line.rfind("LISTENING ", 0) == 0) {
    w.port = static_cast<std::uint16_t>(std::stoi(line.substr(10)));
  }
  if (w.port == 0) {
    std::cerr << "FAIL: workerd " << name << " did not announce a port ("
              << line << ")\n";
    kill(pid, SIGKILL);
    std::exit(1);
  }
  return w;
}

void reap(WorkerProc& w) {
  if (w.pid < 0) return;
  int status = 0;
  waitpid(w.pid, &status, 0);
  w.pid = -1;
}

std::vector<Endpoint> endpoints_of(const std::vector<WorkerProc>& fleet,
                                   std::size_t count) {
  std::vector<Endpoint> e;
  for (std::size_t i = 0; i < count; ++i) {
    e.push_back({"127.0.0.1", fleet[i].port});
  }
  return e;
}

struct Measurement {
  std::size_t workers = 0;
  std::int64_t n = 0;
  std::size_t dofs = 0;
  double seconds = 0.0;
  double final_rel_res = 1.0;
  std::uint64_t frames_relayed = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  double bytes_per_correction = 0.0;
};

}  // namespace
}  // namespace asyncmg

int main(int argc, char** argv) {
  using namespace asyncmg;

  Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const std::int64_t n = cli.get_int("n", smoke ? 8 : 12);
  const int t_max = static_cast<int>(cli.get_int("cycles", smoke ? 10 : 30));
  const auto worker_counts = smoke ? std::vector<std::int64_t>{2, 3}
                                   : cli.get_int_list("workers", {2, 3, 4});
  const std::string json_path = cli.get("json", "BENCH_net.json");
  const std::string trace_dir = cli.get("trace-dir", "");
  const std::string log_dir = cli.get("log-dir", "");
  // The worker binary sits next to the bench dir in the build tree.
  std::string def_bin = cli.program();
  const std::size_t slash = def_bin.find_last_of('/');
  def_bin = (slash == std::string::npos ? std::string(".")
                                        : def_bin.substr(0, slash)) +
            "/../asyncmg_workerd";
  const std::string bin = cli.get("workerd", def_bin);

  for (const std::string& dir : {trace_dir, log_dir}) {
    if (!dir.empty()) mkdir(dir.c_str(), 0755);
  }

  const std::size_t max_workers = static_cast<std::size_t>(
      *std::max_element(worker_counts.begin(), worker_counts.end()));
  // One extra worker: the real-kill gate consumes a process for good.
  std::vector<WorkerProc> fleet;
  for (std::size_t i = 0; i < max_workers + 1; ++i) {
    std::string name = "w";
    name += std::to_string(i);
    fleet.push_back(spawn_workerd(bin, name, trace_dir, log_dir));
  }
  std::cout << "net_scaling: spawned " << fleet.size() << " workerd ("
            << bin << "), ports";
  for (const WorkerProc& w : fleet) std::cout << " " << w.port;
  std::cout << (smoke ? " (smoke)" : "") << "\n\n";

  Problem prob = make_problem(TestSet::kFD7pt, n);
  const MgSetup setup(std::move(prob.a),
                      bench::paper_mg_options(SmootherType::kWeightedJacobi,
                                              0.9, 1));
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());
  const Vector b = bench::paper_rhs(rows, 0);

  // In-process single-shard synchronous oracle for the identity gate.
  Vector x_oracle(rows, 0.0);
  {
    ShardOptions so;
    so.num_shards = 1;
    so.mode = ShardMode::kSynchronous;
    so.t_max = t_max;
    ShardedSolver solver(setup, ao, so);
    solver.solve(b, x_oracle);
  }

  // --- Gate 1: BSP bitwise identity at every worker count -----------------
  for (std::int64_t wc : worker_counts) {
    ClusterOptions co;
    co.endpoints = endpoints_of(fleet, static_cast<std::size_t>(wc));
    ClusterCoordinator coordinator(co);
    ClusterSolveOptions cso;
    cso.bsp = true;
    cso.t_max = t_max;
    cso.additive = ao;
    Vector x(rows, 0.0);
    const ClusterResult r = coordinator.solve(setup, b, x, cso);
    if (!r.dead_workers.empty()) {
      std::cerr << "FAIL: worker died during the BSP identity gate\n";
      return 1;
    }
    for (std::size_t i = 0; i < rows; ++i) {
      if (x[i] != x_oracle[i]) {
        std::cerr << "FAIL: BSP run with " << wc
                  << " workers diverges from the in-process oracle at row "
                  << i << " (" << x[i] << " vs " << x_oracle[i] << ")\n";
        return 1;
      }
    }
  }
  std::cout << "gate 1: BSP multi-process bitwise-matches the in-process "
               "oracle at all worker counts\n";

  // --- Gate 2: deterministic crash (crash_after hook, Criterion-2) --------
  {
    ClusterOptions co;
    co.endpoints = endpoints_of(fleet, 3);
    ClusterCoordinator coordinator(co);
    ClusterSolveOptions cso;
    cso.bsp = true;
    cso.t_max = t_max;
    cso.additive = ao;
    cso.crash_after = {-1, 3, -1};
    Vector x(rows, 0.0);
    const ClusterResult r = coordinator.solve(setup, b, x, cso);
    const bool ok = r.dead_workers == std::vector<std::size_t>{1} &&
                    r.corrections.size() == 3 && r.corrections[0] == t_max &&
                    r.corrections[2] == t_max && r.final_rel_res < 1.0;
    if (!ok) {
      std::cerr << "FAIL: crash_after recovery gate (" << r.to_json()
                << ")\n";
      return 1;
    }
  }
  std::cout << "gate 2: deterministic worker crash recovered (survivors "
               "finished all rounds, residual bounded)\n";

  // --- Sweep: worker count x problem size ---------------------------------
  const auto sizes = smoke ? std::vector<std::int64_t>{n}
                           : cli.get_int_list("sizes", {8, 12});
  Table table({"workers", "n", "dofs", "time", "relres", "relayed",
               "bytes/corr"});
  std::vector<Measurement> runs;
  for (std::int64_t size : sizes) {
    Problem p = make_problem(TestSet::kFD7pt, size);
    const MgSetup s(std::move(p.a),
                    bench::paper_mg_options(SmootherType::kWeightedJacobi,
                                            0.9, 1));
    const std::size_t sr = static_cast<std::size_t>(s.a(0).rows());
    const Vector sb = bench::paper_rhs(sr, 0);
    for (std::int64_t wc : worker_counts) {
      ClusterOptions co;
      co.endpoints = endpoints_of(fleet, static_cast<std::size_t>(wc));
      ClusterCoordinator coordinator(co);
      ClusterSolveOptions cso;
      cso.bsp = true;
      cso.t_max = t_max;
      cso.additive = ao;
      Vector x(sr, 0.0);
      const ClusterResult r = coordinator.solve(s, sb, x, cso);
      Measurement m;
      m.workers = static_cast<std::size_t>(wc);
      m.n = size;
      m.dofs = sr;
      m.seconds = r.seconds;
      m.final_rel_res = r.final_rel_res;
      m.frames_relayed = r.frames_relayed;
      m.bytes_sent = r.bytes_sent;
      m.bytes_received = r.bytes_received;
      std::uint64_t corr = 0;
      for (int c : r.corrections) corr += static_cast<std::uint64_t>(c);
      m.bytes_per_correction =
          corr == 0 ? 0.0
                    : static_cast<double>(m.bytes_sent + m.bytes_received) /
                          static_cast<double>(corr);
      runs.push_back(m);
      table.add_row({std::to_string(wc), std::to_string(size),
                     std::to_string(sr), Table::fmt(r.seconds, 4),
                     Table::fmt(r.final_rel_res, 3),
                     std::to_string(r.frames_relayed),
                     Table::fmt(m.bytes_per_correction, 0)});
    }
  }
  std::cout << "\n";
  table.emit(cli.get("csv", ""));
  std::cout << "\nReading: bytes/corr is dominated by the solve request "
               "(hierarchy + b) at small scale; the data plane (relayed "
               "halo frames) grows with worker count\n\n";

  // --- Gate 3: real SIGKILL mid-solve -------------------------------------
  // Timing-dependent by nature: escalate t_max until the kill lands while
  // the solve is in flight. The coordinator returning AT ALL on every
  // attempt is itself the no-hang assertion.
  bool kill_landed = false;
  int kill_t_max = std::max(t_max, 50);
  const std::size_t victim = 2;
  for (int attempt = 0; attempt < 5 && !kill_landed; ++attempt) {
    ClusterOptions co;
    co.endpoints = endpoints_of(fleet, 3);
    co.heartbeat_timeout_ms = 500.0;
    ClusterCoordinator coordinator(co);
    ClusterSolveOptions cso;
    cso.bsp = true;
    cso.t_max = kill_t_max;
    cso.additive = ao;
    Vector x(rows, 0.0);
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      kill(fleet[victim].pid, SIGKILL);
    });
    const ClusterResult r = coordinator.solve(setup, b, x, cso);
    killer.join();
    reap(fleet[victim]);
    if (!r.dead_workers.empty()) {
      const bool ok = r.dead_workers == std::vector<std::size_t>{victim} &&
                      r.corrections[0] == kill_t_max &&
                      r.corrections[1] == kill_t_max && r.final_rel_res < 1.0;
      if (!ok) {
        std::cerr << "FAIL: SIGKILL recovery gate (" << r.to_json() << ")\n";
        return 1;
      }
      kill_landed = true;
    } else {
      // Solve finished before the kill landed: respawn the victim and try a
      // longer solve.
      std::cout << "gate 3: kill landed post-solve at t_max=" << kill_t_max
                << ", escalating\n";
      fleet[victim] = spawn_workerd(bin, fleet[victim].name + "r", trace_dir,
                                    log_dir);
      kill_t_max *= 4;
    }
  }
  if (!kill_landed) {
    std::cerr << "FAIL: could not land SIGKILL mid-solve after escalation\n";
    return 1;
  }
  std::cout << "gate 3: SIGKILLed worker detected dead mid-solve; survivors "
               "finished all rounds, coordinator returned normally\n";

  // --- Orderly shutdown (also flushes the workers' traces/logs) -----------
  {
    std::vector<Endpoint> live;
    for (const WorkerProc& w : fleet) {
      if (w.pid >= 0) live.push_back({"127.0.0.1", w.port});
    }
    ClusterOptions co;
    co.endpoints = live;
    co.connect_attempts = 2;
    ClusterCoordinator(co).shutdown_workers();
  }
  for (WorkerProc& w : fleet) reap(w);

  std::ofstream out(json_path);
  out << "{\"bench\":\"net_scaling\",\"n\":" << n << ",\"cycles\":" << t_max
      << ",\"smoke\":" << (smoke ? 1 : 0)
      << ",\"bsp_bitwise_oracle\":\"pass\",\"crash_after_recovery\":\"pass\""
      << ",\"sigkill_recovery\":\"pass\",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    if (i) out << ",";
    out << "{\"workers\":" << m.workers << ",\"n\":" << m.n << ",\"dofs\":"
        << m.dofs << ",\"seconds\":" << m.seconds << ",\"final_rel_res\":"
        << m.final_rel_res << ",\"frames_relayed\":" << m.frames_relayed
        << ",\"bytes_sent\":" << m.bytes_sent << ",\"bytes_received\":"
        << m.bytes_received << ",\"bytes_per_correction\":"
        << m.bytes_per_correction << "}";
  }
  out << "]}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
