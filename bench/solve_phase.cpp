// Solve-phase kernel-engine bench: seconds per multiplicative V-cycle for
// the three engine configurations on the 27-point Laplacian, plus PCG with
// and without a reusable workspace. Writes a machine-readable summary to
// --json (default BENCH_solve.json).
//
// Configurations (one MgSetup per format so conversion cost never leaks
// into the timed loop):
//
//   reference   set_fused(false): the original two-pass CSR path with
//                per-call smoother temporaries -- the bitwise oracle and
//                the speedup baseline.
//   fused_csr   fused kernels + cycle workspace, all levels CSR.
//   fused_sell  fused kernels + cycle workspace + SELL-C-sigma on the
//                levels the heuristic selects.
//
// All three produce bit-identical iterates (tests/test_kernels.cpp); this
// harness only measures time. `--smoke` shrinks everything for CI: one
// small size, few cycles, SELL forced on so the whole engine is exercised.

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "bench_common.hpp"
#include "multigrid/pcg.hpp"
#include "sparse/sellcs.hpp"
#include "telemetry/sink.hpp"
#include "util/timer.hpp"

namespace asyncmg {
namespace {

struct Measurement {
  std::string config;
  Index n = 0;
  int threads = 1;
  double sec_per_cycle = 0.0;
  double speedup = 1.0;  // vs reference at the same (n, threads)
};

/// Warm-up: run a few cycles so workspaces, page mappings, and the OpenMP
/// team exist before anything is timed.
void warm(MultiplicativeMg& mg, const Vector& b, int cycles) {
  Vector x(b.size(), 0.0);
  for (int t = 0; t < cycles; ++t) mg.cycle(b, x);
}

}  // namespace
}  // namespace asyncmg

int main(int argc, char** argv) {
  using namespace asyncmg;

  Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const auto sizes =
      smoke ? std::vector<std::int64_t>{10}
            : cli.get_int_list("sizes", {16, 24});
  const int cycles = static_cast<int>(cli.get_int("cycles", smoke ? 3 : 25));
  const int repeats = static_cast<int>(cli.get_int("repeats", smoke ? 1 : 5));
  const auto threads = smoke ? std::vector<std::int64_t>{1}
                             : cli.get_int_list("threads", {1, 4});
  const std::string json_path = cli.get("json", "BENCH_solve.json");
  const int max_threads = omp_get_max_threads();

  std::cout << "solve_phase: 27pt Laplacian, V(1,1) cycles=" << cycles
            << " repeats=" << repeats << (smoke ? " (smoke)" : "") << "\n";

  std::vector<Measurement> rows;
  double largest_1t_speedup = 0.0;
  for (std::int64_t ni : sizes) {
    const Index n = static_cast<Index>(ni);
    MgOptions mo_sell =
        bench::paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1);
    if (smoke) mo_sell.engine.sell_min_rows = 1;  // exercise SELL in CI
    MgOptions mo_csr = mo_sell;
    mo_csr.engine.use_sell = false;
    MgSetup s_sell(make_laplace_27pt(n).a, mo_sell);
    MgSetup s_csr(make_laplace_27pt(n).a, mo_csr);
    const auto dofs = static_cast<std::size_t>(s_csr.a(0).rows());
    const Vector b = bench::paper_rhs(dofs, 0);
    std::cout << "  n=" << n << " (" << dofs << " dofs)";
    if (const SellMatrix* sm = s_sell.sell(0)) {
      std::cout << "  [finest " << sm->summary() << "]";
    }
    std::cout << "\n";

    for (std::int64_t t : threads) {
      if (t > max_threads) continue;
      omp_set_num_threads(static_cast<int>(t));
      struct Cfg {
        const char* name;
        MgSetup* setup;
        bool fused;
      };
      const Cfg cfgs[] = {{"reference", &s_csr, false},
                          {"fused_csr", &s_csr, true},
                          {"fused_sell", &s_sell, true}};
      constexpr int kNumCfgs = 3;
      std::vector<std::unique_ptr<MultiplicativeMg>> engines;
      double best[kNumCfgs] = {0.0, 0.0, 0.0};
      for (int i = 0; i < kNumCfgs; ++i) {
        engines.push_back(std::make_unique<MultiplicativeMg>(*cfgs[i].setup));
        engines.back()->set_fused(cfgs[i].fused);
        warm(*engines.back(), b, 2);  // warm workspaces + OpenMP team
      }
      // Paired measurement: within a round every engine advances one cycle
      // in turn, so machine-load drift and cache state hit all three nearly
      // identically (timing each engine's cycles back to back instead lets
      // whatever the machine is doing during that batch bias one engine's
      // number). Keep each engine's best round.
      for (int rep = 0; rep < repeats; ++rep) {
        std::vector<Vector> xs(kNumCfgs, Vector(b.size(), 0.0));
        double acc[kNumCfgs] = {0.0, 0.0, 0.0};
        Timer timer;
        for (int c = 0; c < cycles; ++c) {
          for (int i = 0; i < kNumCfgs; ++i) {
            timer.reset();
            engines[i]->cycle(b, xs[i]);
            acc[i] += timer.seconds();
          }
        }
        for (int i = 0; i < kNumCfgs; ++i) {
          const double per = acc[i] / cycles;
          if (rep == 0 || per < best[i]) best[i] = per;
        }
      }
      const double ref_time = best[0];
      for (int i = 0; i < kNumCfgs; ++i) {
        Measurement m;
        m.config = cfgs[i].name;
        m.n = n;
        m.threads = static_cast<int>(t);
        m.sec_per_cycle = best[i];
        m.speedup = m.sec_per_cycle > 0.0 ? ref_time / m.sec_per_cycle : 0.0;
        rows.push_back(m);
        std::cout << "    threads=" << t << " " << m.config << ": "
                  << m.sec_per_cycle * 1e3 << " ms/cycle  (x" << m.speedup
                  << ")\n";
        if (t == 1 && ni == sizes.back() && i == 2) {
          largest_1t_speedup = m.speedup;
        }
      }
    }
  }
  omp_set_num_threads(max_threads);

  // ------------------------------------------------------------------
  // Kernel-backend sweep (DESIGN.md section 15): the fused SELL engine
  // under each supported backend, paired-round timing against the scalar
  // oracle. The iterates must match the scalar backend bitwise -- a
  // mismatch is a correctness failure and exits nonzero; slower-than-
  // scalar is only reported. Bandwidth comes from the engine's own
  // traffic model (kernel.bytes_moved, fed by sell_pass_bytes /
  // csr_pass_bytes) over the best per-cycle time.
  // ------------------------------------------------------------------
  struct BackendRow {
    BackendKind kind;
    double sec_per_cycle = 0.0;
    double speedup = 1.0;  // vs the scalar backend
    std::uint64_t bytes_per_cycle = 0;
    double gbps = 0.0;
  };
  std::vector<BackendRow> backend_rows;
  bool backend_mismatch = false;
  {
    const Index n = static_cast<Index>(sizes.back());
    const int bt = static_cast<int>(
        *std::max_element(threads.begin(), threads.end()));
    omp_set_num_threads(std::min(bt, max_threads));
    std::vector<BackendKind> kinds{BackendKind::kScalar};
    for (const BackendKind k : {BackendKind::kAvx2, BackendKind::kAvx512}) {
      if (backend_supported(k)) kinds.push_back(k);
    }
    std::vector<std::unique_ptr<MgSetup>> setups;
    std::vector<std::unique_ptr<MultiplicativeMg>> engines;
    for (const BackendKind k : kinds) {
      MgOptions mo =
          bench::paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1);
      if (smoke) mo.engine.sell_min_rows = 1;
      mo.engine.backend = k;
      setups.push_back(
          std::make_unique<MgSetup>(make_laplace_27pt(n).a, mo));
      engines.push_back(std::make_unique<MultiplicativeMg>(*setups.back()));
    }
    const Vector bb = bench::paper_rhs(
        static_cast<std::size_t>(setups[0]->a(0).rows()), 0);

    // Correctness gate: a few cycles per backend, bitwise against scalar.
    std::vector<Vector> xs(kinds.size(), Vector(bb.size(), 0.0));
    for (int t = 0; t < 3; ++t) {
      for (std::size_t i = 0; i < kinds.size(); ++i) {
        engines[i]->cycle(bb, xs[i]);
      }
    }
    for (std::size_t i = 1; i < kinds.size(); ++i) {
      for (std::size_t j = 0; j < xs[0].size(); ++j) {
        if (xs[i][j] != xs[0][j]) {
          std::cerr << "backend " << backend_kind_name(kinds[i])
                    << " diverges from scalar at dof " << j << "\n";
          backend_mismatch = true;
          break;
        }
      }
    }

    // Bytes per cycle from the engine's telemetry counters (identical for
    // every backend; measured once on the scalar engine).
    std::uint64_t bytes_per_cycle = 0;
    {
      TelemetrySink sink;
      engines[0]->set_telemetry(&sink, 0);
      Vector x(bb.size(), 0.0);
      engines[0]->cycle(bb, x);
      bytes_per_cycle = sink.metrics().counter("kernel.bytes_moved").value();
      engines[0]->set_telemetry(nullptr);
      (void)sink.drain();
    }

    std::vector<double> best(kinds.size(), 0.0);
    for (int rep = 0; rep < repeats; ++rep) {
      std::vector<Vector> xr(kinds.size(), Vector(bb.size(), 0.0));
      std::vector<double> acc(kinds.size(), 0.0);
      Timer timer;
      for (int c = 0; c < cycles; ++c) {
        for (std::size_t i = 0; i < kinds.size(); ++i) {
          timer.reset();
          engines[i]->cycle(bb, xr[i]);
          acc[i] += timer.seconds();
        }
      }
      for (std::size_t i = 0; i < kinds.size(); ++i) {
        const double per = acc[i] / cycles;
        if (rep == 0 || per < best[i]) best[i] = per;
      }
    }
    std::cout << "  backend sweep: n=" << n
              << " threads=" << std::min(bt, max_threads)
              << " (supported: " << supported_backends_string() << ")\n";
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      BackendRow row;
      row.kind = kinds[i];
      row.sec_per_cycle = best[i];
      row.speedup = best[i] > 0.0 ? best[0] / best[i] : 0.0;
      row.bytes_per_cycle = bytes_per_cycle;
      row.gbps = best[i] > 0.0
                     ? static_cast<double>(bytes_per_cycle) / best[i] / 1e9
                     : 0.0;
      backend_rows.push_back(row);
      std::cout << "    " << backend_kind_name(row.kind) << ": "
                << row.sec_per_cycle * 1e3 << " ms/cycle  (x" << row.speedup
                << " vs scalar, " << row.gbps << " GB/s)\n";
    }
    omp_set_num_threads(max_threads);
  }

  // PCG workspace ablation at the smallest size: per-solve seconds with a
  // fresh workspace every call vs one reused across calls.
  const Index pcg_n = static_cast<Index>(sizes.front());
  MgOptions mo = bench::paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1);
  MgSetup s(make_laplace_27pt(pcg_n).a, mo);
  const Vector b = bench::paper_rhs(static_cast<std::size_t>(s.a(0).rows()), 1);
  PcgOptions po;
  po.max_iterations = smoke ? 5 : 20;
  po.tol = 0.0;
  const Preconditioner pre =
      make_mg_preconditioner(s, MgPreconditionerKind::kSymmetricVCycle);
  const int solves = smoke ? 2 : 5;
  double pcg_fresh = 0.0, pcg_reused = 0.0;
  {
    Vector x;
    Timer timer;
    for (int r = 0; r < solves; ++r) {
      x.assign(b.size(), 0.0);
      pcg_solve(s.a(0), b, x, pre, po);
    }
    pcg_fresh = timer.seconds() / solves;
    PcgWorkspace ws;
    pcg_solve(s.a(0), b, x, pre, po, ws);  // warm
    timer.reset();
    for (int r = 0; r < solves; ++r) {
      x.assign(b.size(), 0.0);
      pcg_solve(s.a(0), b, x, pre, po, ws);
    }
    pcg_reused = timer.seconds() / solves;
  }
  std::cout << "  pcg n=" << pcg_n << ": fresh-ws " << pcg_fresh * 1e3
            << " ms/solve, reused-ws " << pcg_reused * 1e3 << " ms/solve\n";

  if (largest_1t_speedup > 0.0) {
    std::cout << "\nsingle-thread fused_sell speedup at largest size: x"
              << largest_1t_speedup << "\n";
  }

  std::ofstream out(json_path);
  out << "{\"bench\":\"solve_phase\",\"problem\":\"27pt\",\"cycles\":" << cycles
      << ",\"repeats\":" << repeats << ",\"smoke\":" << (smoke ? 1 : 0)
      << ",\"runs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    if (i) out << ",";
    out << "{\"config\":\"" << m.config << "\",\"n\":" << m.n
        << ",\"threads\":" << m.threads << ",\"sec_per_cycle\":"
        << m.sec_per_cycle << ",\"speedup\":" << m.speedup << "}";
  }
  out << "],\"pcg\":{\"n\":" << pcg_n << ",\"fresh_ws_seconds\":" << pcg_fresh
      << ",\"reused_ws_seconds\":" << pcg_reused << "}}\n";
  std::cout << "wrote " << json_path << "\n";

  const std::string backend_json =
      cli.get("json-backend", "BENCH_backend.json");
  std::ofstream bout(backend_json);
  bout << "{\"bench\":\"solve_phase_backend\",\"problem\":\"27pt\",\"n\":"
       << sizes.back() << ",\"cycles\":" << cycles
       << ",\"smoke\":" << (smoke ? 1 : 0) << ",\"supported\":\""
       << supported_backends_string() << "\",\"bitwise_identical\":"
       << (backend_mismatch ? 0 : 1) << ",\"runs\":[";
  for (std::size_t i = 0; i < backend_rows.size(); ++i) {
    const auto& r = backend_rows[i];
    if (i) bout << ",";
    bout << "{\"backend\":\"" << backend_kind_name(r.kind)
         << "\",\"sec_per_cycle\":" << r.sec_per_cycle
         << ",\"speedup_vs_scalar\":" << r.speedup << ",\"bytes_per_cycle\":"
         << r.bytes_per_cycle << ",\"gbps\":" << r.gbps << "}";
  }
  bout << "]}\n";
  std::cout << "wrote " << backend_json << "\n";

  if (backend_mismatch) {
    std::cerr << "FAIL: SIMD backend iterates are not bitwise identical to "
                 "the scalar oracle\n";
    return 1;
  }
  return 0;
}
