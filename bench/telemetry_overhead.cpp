// Telemetry overhead microbench: cost of the event sink on the free-running
// asynchronous Multadd solver, in four configurations --
//
//   none       RuntimeOptions::telemetry = nullptr (the baseline every other
//              config is compared against),
//   disabled   a sink is attached but set_enabled(false): the documented
//              "one branch per site" configuration,
//   enabled    default ring capacity (4096/thread), no drops expected,
//   tiny-ring  32-slot rings: demonstrates the overflow policy (drop +
//              count, never block) under sustained recording.
//
// The acceptance bar for the subsystem is the `disabled` row: < 2% versus
// `none`. The `enabled` row additionally reports ns per recorded event.

#include <iostream>

#include "async/runtime.hpp"
#include "bench_common.hpp"
#include "telemetry/sink.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<Index>(cli.get_int("size", 14));
  const int runs = static_cast<int>(cli.get_int("runs", 7));
  const int cycles = static_cast<int>(cli.get_int("cycles", 30));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 8));

  Problem prob = make_problem(TestSet::kFD7pt, n);
  const MgSetup setup(std::move(prob.a),
                      paper_mg_options_for(TestSet::kFD7pt,
                                           SmootherType::kWeightedJacobi, 0));
  const auto rows = static_cast<std::size_t>(setup.a(0).rows());
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  const AdditiveCorrector corr(setup, ao);

  std::cout << "Telemetry overhead: async free-run Multadd, w-Jacobi, 7pt n="
            << n << " (" << rows << " rows), " << threads
            << " threads, t_max=" << cycles << ", mean of " << runs
            << " runs\n\n";

  struct Config {
    std::string name;
    bool attach = false;
    bool enable = false;
    std::size_t ring_capacity = 1u << 12;
  };
  const std::vector<Config> configs = {
      {"none", false, false},
      {"disabled", true, false},
      {"enabled", true, true},
      {"tiny-ring", true, true, 32},
  };

  // Untimed warm-up so the first configuration doesn't pay cold caches
  // and thread spin-up on behalf of every later comparison.
  {
    const Vector b = paper_rhs(rows, 0);
    Vector x(rows, 0.0);
    RuntimeOptions ro;
    ro.write = WritePolicy::kAtomicWrite;
    ro.t_max = cycles;
    ro.num_threads = threads;
    run_shared_memory(corr, b, x, ro);
  }

  Table table({"config", "seconds", "vs-none", "events", "dropped",
               "ns/event"});
  double base_secs = 0.0;
  for (const Config& cfg : configs) {
    std::vector<double> secs;
    std::size_t events = 0;
    std::uint64_t dropped = 0;
    for (int run = 0; run < runs; ++run) {
      TelemetryOptions to;
      to.ring_capacity = cfg.ring_capacity;
      to.start_enabled = cfg.enable;
      TelemetrySink sink(to);

      const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
      Vector x(rows, 0.0);
      RuntimeOptions ro;
      ro.write = WritePolicy::kAtomicWrite;
      ro.t_max = cycles;
      ro.num_threads = threads;
      ro.telemetry = cfg.attach ? &sink : nullptr;
      const RuntimeResult rr = run_shared_memory(corr, b, x, ro);
      secs.push_back(rr.seconds);
      events += sink.drain().size();
      dropped += sink.dropped_total();
    }
    const double s = mean(secs);
    if (cfg.name == "none") base_secs = s;
    const double delta = s - base_secs;
    const std::string per_event =
        events > 0 && delta > 0.0
            ? Table::fmt(delta * 1e9 * runs / static_cast<double>(events), 1)
            : "-";
    table.add_row({cfg.name, Table::fmt(s, 4),
                   base_secs > 0.0
                       ? Table::fmt(100.0 * (s / base_secs - 1.0), 2) + "%"
                       : "0%",
                   std::to_string(events / static_cast<std::size_t>(runs)),
                   std::to_string(dropped / static_cast<std::uint64_t>(runs)),
                   per_event});
  }
  table.emit();
  return 0;
}
