// Mixed-precision hierarchy sweep (DESIGN.md section 12): byte footprint,
// bytes moved per V-cycle, convergence, and cache residency for the three
// precision policies (f64 oracle, f32coarse, auto) on the 27pt Laplacian.
// Writes a machine-readable summary to --json (default BENCH_precision.json).
//
// The f64 column is the oracle: the f32coarse/auto rows are reported
// relative to it (operator bytes saved, extra cycles paid, solution
// distance). `--smoke` shrinks the problem for CI; the harness exits
// nonzero if a reduced-precision policy fails to converge or fails to beat
// the oracle's resident byte footprint, so CI catches both correctness and
// regression of the perf claim.

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "amg/precision.hpp"
#include "service/hierarchy_cache.hpp"
#include "telemetry/sink.hpp"
#include "util/timer.hpp"

namespace asyncmg {
namespace {

struct PolicyResult {
  std::string name;
  std::size_t setup_bytes = 0;
  std::size_t operator_value_bytes = 0;
  std::uint64_t bytes_per_cycle = 0;
  int cycles = 0;
  bool converged = false;
  double final_rel_res = 0.0;
  double solve_seconds = 0.0;
  double sol_rel_dist = 0.0;  // ||x - x_f64|| / ||x_f64||
  std::vector<std::pair<std::size_t, const char*>> level_precisions;
};

PrecisionPolicy policy_from_name(const std::string& name) {
  PrecisionPolicy pol;  // pinned: bypasses ASYNCMG_PRECISION
  if (name == "f32coarse") pol.mode = PrecisionPolicy::Mode::kF32Coarse;
  if (name == "auto") pol.mode = PrecisionPolicy::Mode::kAuto;
  return pol;
}

std::size_t operator_value_bytes(const MgSetup& s) {
  std::size_t total = 0;
  for (std::size_t k = 0; k < s.num_levels(); ++k) {
    total += s.a(k).value_bytes();
    if (k + 1 < s.num_levels()) {
      total += s.p(k).value_bytes() + s.pbar(k).value_bytes() +
               s.r(k).value_bytes() + s.rbar(k).value_bytes();
    }
  }
  return total;
}

}  // namespace
}  // namespace asyncmg

int main(int argc, char** argv) {
  using namespace asyncmg;

  Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const Index n = static_cast<Index>(cli.get_int("n", smoke ? 10 : 20));
  const int t_max = static_cast<int>(cli.get_int("cycles", 100));
  const double tol = 1e-8;
  const int repeats = static_cast<int>(cli.get_int("repeats", smoke ? 1 : 3));
  const std::string json_path = cli.get("json", "BENCH_precision.json");

  std::cout << "precision_sweep: 27pt Laplacian n=" << n << " ("
            << static_cast<std::int64_t>(n) * n * n << " dofs), tol=" << tol
            << (smoke ? " (smoke)" : "") << "\n";

  const std::vector<std::string> policies = {"f64", "f32coarse", "auto"};
  std::vector<PolicyResult> results;
  Vector x_oracle;

  for (const std::string& name : policies) {
    MgOptions mo =
        bench::paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1);
    mo.amg.precision = policy_from_name(name);
    MgSetup s(make_laplace_27pt(n).a, mo);
    const auto dofs = static_cast<std::size_t>(s.a(0).rows());
    const Vector b = bench::paper_rhs(dofs, 0);

    PolicyResult r;
    r.name = name;
    r.setup_bytes = estimate_setup_bytes(s);
    r.operator_value_bytes = operator_value_bytes(s);
    for (std::size_t k = 0; k < s.num_levels(); ++k) {
      r.level_precisions.emplace_back(k, precision_name(s.a(k).precision()));
    }

    // Bytes moved by one V-cycle, from the kernel engine's own counter.
    {
      TelemetrySink sink;
      MultiplicativeMg mg(s);
      mg.set_telemetry(&sink, 0);
      Vector x(dofs, 0.0);
      mg.cycle(b, x);
      r.bytes_per_cycle =
          sink.metrics().counter("kernel.bytes_moved").value();
    }

    // Convergence + best-of-repeats wall time, telemetry detached.
    Vector x(dofs, 0.0);
    for (int rep = 0; rep < repeats; ++rep) {
      MultiplicativeMg mg(s);
      std::fill(x.begin(), x.end(), 0.0);
      Timer timer;
      const SolveStats st = mg.solve(b, x, t_max, tol);
      const double sec = timer.seconds();
      if (rep == 0 || sec < r.solve_seconds) r.solve_seconds = sec;
      r.cycles = st.cycles;
      r.converged = st.converged;
      r.final_rel_res = st.final_rel_res();
    }
    if (name == "f64") {
      x_oracle = x;
    } else {
      double num = 0.0, den = 0.0;
      for (std::size_t i = 0; i < dofs; ++i) {
        num += (x[i] - x_oracle[i]) * (x[i] - x_oracle[i]);
        den += x_oracle[i] * x_oracle[i];
      }
      r.sol_rel_dist = den > 0.0 ? std::sqrt(num / den) : 0.0;
    }

    std::cout << "  " << name << ": setup " << r.setup_bytes / 1024
              << " KiB, op values " << r.operator_value_bytes / 1024
              << " KiB, " << r.bytes_per_cycle / 1024 << " KiB/cycle, "
              << r.cycles << " cycles"
              << (r.converged ? "" : " (NOT CONVERGED)") << ", rel res "
              << r.final_rel_res << "\n";
    results.push_back(std::move(r));
  }

  // Cache residency under a fixed byte budget: the budget holds two
  // demoted setups but fewer fp64 ones, so reduced precision translates
  // directly into more hierarchies resident per byte.
  const std::size_t b32 = results[1].setup_bytes;
  const std::size_t budget = 2 * b32 + b32 / 10;
  const int num_matrices = 4;
  std::vector<std::size_t> residency;
  for (const std::string& name : policies) {
    HierarchyCacheOptions co;
    co.mg = bench::paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1);
    co.mg.amg.precision = policy_from_name(name);
    co.max_bytes = budget;
    HierarchyCache cache(co);
    for (int i = 0; i < num_matrices; ++i) {
      Problem p = make_laplace_27pt(n);
      p.a.values_mutable()[0] += 1e-9 * (i + 1);
      cache.get_or_build(p.a);
    }
    residency.push_back(cache.stats().resident_entries);
    std::cout << "  cache[" << name << "]: " << residency.back() << "/"
              << num_matrices << " resident in " << budget / 1024
              << " KiB budget\n";
  }

  std::ofstream out(json_path);
  out << "{\"bench\":\"precision_sweep\",\"problem\":\"27pt\",\"n\":" << n
      << ",\"dofs\":" << static_cast<std::int64_t>(n) * n * n
      << ",\"tol\":" << tol << ",\"cache_budget_bytes\":" << budget
      << ",\"cache_matrices\":" << num_matrices << ",\"policies\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PolicyResult& r = results[i];
    if (i) out << ",";
    out << "{\"policy\":\"" << r.name << "\",\"setup_bytes\":" << r.setup_bytes
        << ",\"operator_value_bytes\":" << r.operator_value_bytes
        << ",\"bytes_per_cycle\":" << r.bytes_per_cycle
        << ",\"cycles\":" << r.cycles
        << ",\"converged\":" << (r.converged ? "true" : "false")
        << ",\"final_rel_res\":" << r.final_rel_res
        << ",\"solve_seconds\":" << r.solve_seconds
        << ",\"sol_rel_dist_vs_f64\":" << r.sol_rel_dist
        << ",\"cache_resident\":" << residency[i]
        << ",\"level_precisions\":[";
    for (std::size_t k = 0; k < r.level_precisions.size(); ++k) {
      if (k) out << ",";
      out << "\"" << r.level_precisions[k].second << "\"";
    }
    out << "]}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << json_path << "\n";

  // CI gate: every policy must converge; reduced precision must actually
  // shrink the resident footprint and fit more hierarchies in the budget.
  for (const PolicyResult& r : results) {
    if (!r.converged) {
      std::cerr << "FAIL: policy " << r.name << " did not converge\n";
      return 1;
    }
    if (r.name != "f64" && r.sol_rel_dist > 1e-4) {
      std::cerr << "FAIL: policy " << r.name << " drifted "
                << r.sol_rel_dist << " from the f64 oracle\n";
      return 1;
    }
  }
  if (results[1].setup_bytes >= results[0].setup_bytes ||
      residency[1] < 2 * residency[0]) {
    std::cerr << "FAIL: f32coarse footprint/residency did not improve "
              << "(bytes " << results[1].setup_bytes << " vs "
              << results[0].setup_bytes << ", resident " << residency[1]
              << " vs " << residency[0] << ")\n";
    return 1;
  }
  return 0;
}
