// Ablation: smoother choice. Estimates the smoothing iteration's
// contraction factor rho(G) and counts V-cycles-to-tolerance for Mult and
// sync Multadd under all four smoothers. Backs the paper's claim that the
// (asynchronous) Gauss-Seidel-type smoother needs the fewest V-cycles even
// with a single sweep.

#include <iostream>

#include "bench_common.hpp"
#include "smoothers/multicolor.hpp"
#include "smoothers/spectral.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

namespace {

double estimate_rho(const Smoother& sm, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector e = random_vector(n, rng);
  const Vector zero(n, 0.0);
  double rho = 0.0;
  for (int it = 0; it < 50; ++it) {
    const double before = norm2(e);
    sm.sweep(zero, e);
    const double after = norm2(e);
    if (before > 0.0) rho = after / before;
    if (after > 0.0) scale(e, 1.0 / after);
  }
  return rho;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Index n = static_cast<Index>(cli.get_int("n", 12));
  const int max_cycles = static_cast<int>(cli.get_int("max-cycles", 300));
  const double tol = cli.get_double("tol", 1e-9);
  const std::string csv = cli.get("csv", "");

  std::cout << "Smoother ablation on 7pt " << n << "^3, tol " << tol
            << "\n\n";

  Table table({"smoother", "rho(G)", "rho(|G|)", "Mult cycles",
               "Multadd cycles", "AFACx cycles"});

  for (SmootherType st :
       {SmootherType::kWeightedJacobi, SmootherType::kL1Jacobi,
        SmootherType::kHybridJGS, SmootherType::kAsyncGS,
        SmootherType::kL1HybridJGS}) {
    Problem prob = make_problem(TestSet::kFD7pt, n);
    const MgSetup setup(std::move(prob.a), paper_mg_options(st, 0.9, 1));
    const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());
    const Vector b = paper_rhs(rows, 0);

    const double rho = estimate_rho(setup.smoother(0), rows, 77);
    // rho(|G|) -- the asynchronous convergence condition of Section II-C;
    // computable matrix-free only for the diagonal smoothers.
    std::string rho_abs = "-";
    if (st == SmootherType::kWeightedJacobi || st == SmootherType::kL1Jacobi) {
      rho_abs = Table::fmt(
          spectral_radius_abs_iteration(setup.smoother(0), 120, 78), 3);
    }

    auto cycles_of = [&](auto&& solver) -> std::string {
      Vector x(rows, 0.0);
      const SolveStats st2 = solver.solve(b, x, max_cycles, tol);
      return st2.converged ? std::to_string(st2.cycles) : "+";
    };

    MultiplicativeMg mult(setup);
    AdditiveOptions ma;
    ma.kind = AdditiveKind::kMultadd;
    AdditiveMg multadd(setup, ma);
    AdditiveOptions af;
    af.kind = AdditiveKind::kAfacx;
    AdditiveMg afacx(setup, af);

    table.add_row({smoother_name(st), Table::fmt(rho, 3), rho_abs,
                   cycles_of(mult), cycles_of(multadd), cycles_of(afacx)});
  }
  // Multicolor GS for reference: the deterministic parallel GS variant
  // (paper reference [10] uses multicoloring to make additive MG
  // convergent); it is not a Smoother plug-in, so only rho is reported.
  {
    Problem prob = make_problem(TestSet::kFD7pt, n);
    const MulticolorGS mc(prob.a);
    Rng rng(77);
    Vector e = random_vector(static_cast<std::size_t>(prob.a.rows()), rng);
    const Vector zero(e.size(), 0.0);
    double rho = 0.0;
    for (int it = 0; it < 50; ++it) {
      const double before = norm2(e);
      mc.sweep(zero, e);
      const double after = norm2(e);
      if (before > 0.0) rho = after / before;
      if (after > 0.0) scale(e, 1.0 / after);
    }
    table.add_row({"multicolor-gs (" + std::to_string(mc.num_colors()) +
                       " colors)",
                   Table::fmt(rho, 3), "-", "-", "-", "-"});
  }

  table.emit(csv);
  std::cout << "\nReading: the GS-type smoothers (hybrid JGS / async GS) "
               "contract fastest and need the fewest V-cycles; multicolor "
               "GS matches their rate deterministically\n";
  return 0;
}
