// Figure 6: wall-clock time versus number of threads for sync Mult, sync
// Multadd (lock-write), and async Multadd (lock-write, local-res), with
// w-Jacobi smoothing, on the four test matrices.
//
// The paper measured a 68-core/272-thread KNL. This container cannot
// reproduce thread scaling in wall-clock, so the bench reports BOTH:
//   * the machine-model prediction (src/perfmodel), which reproduces the
//     paper's shape: Mult fastest at few threads, async Multadd fastest
//     and flattest at many threads; and
//   * (--measure) actual measured times on this machine, for reference.
//
// The number of V-cycles per method is fixed per matrix (the paper's
// Table I counts show Mult needing fewer V-cycles than async Multadd; use
// --mult-cycles/--async-cycles to adjust the ratio).

#include <iostream>

#include "async/runtime.hpp"
#include "bench_common.hpp"
#include "perfmodel/perfmodel.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto threads_list =
      cli.get_int_list("threads", {1, 2, 4, 8, 16, 32, 64, 128, 272});
  // Defaults large enough that the hierarchy keeps 4+ levels after
  // aggressive coarsening: Multadd's interpolation-chain redundancy (the
  // reason Mult wins at low thread counts) only appears with a genuinely
  // multi-level hierarchy.
  const auto sizes = cli.get_int_list("sizes", {30, 24, 18, 16});
  const int mult_cycles = static_cast<int>(cli.get_int("mult-cycles", 65));
  const int async_cycles = static_cast<int>(cli.get_int("async-cycles", 45));
  const bool measure = cli.get_bool("measure", false);
  const std::string csv = cli.get("csv", "");

  MachineModel machine;
  machine.flops_per_second = cli.get_double("flops", machine.flops_per_second);
  machine.heterogeneity = cli.get_double("heterogeneity", machine.heterogeneity);
  machine.jitter = cli.get_double("jitter", machine.jitter);

  const std::vector<TestSet> sets = {TestSet::kFD7pt, TestSet::kFD27pt,
                                     TestSet::kFemLaplace,
                                     TestSet::kFemElasticity};

  std::cout << "Figure 6: wall-clock vs threads, w-Jacobi; 'model' columns "
               "use the KNL-substitute machine model"
            << (measure ? ", 'meas' columns are measured on this machine"
                        : "")
            << "\n\n";

  std::vector<std::string> header = {"matrix", "threads", "model-mult",
                                     "model-syncMA", "model-asyncMA"};
  if (measure) {
    header.insert(header.end(), {"meas-mult", "meas-syncMA", "meas-asyncMA"});
  }
  Table table(header);

  for (std::size_t si = 0; si < sets.size(); ++si) {
    const TestSet set = sets[si];
    Problem prob =
        make_problem(set, static_cast<Index>(sizes[std::min(si, sizes.size() - 1)]));
    const MgSetup setup(
        std::move(prob.a),
        paper_mg_options_for(set, SmootherType::kWeightedJacobi, 2));
    AdditiveOptions ao;
    ao.kind = AdditiveKind::kMultadd;
    const AdditiveCorrector corr(setup, ao);
    const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());

    for (std::int64_t t : threads_list) {
      const auto threads = static_cast<std::size_t>(t);
      std::vector<std::string> row = {
          test_set_name(set), std::to_string(t),
          Table::fmt(predict_mult(setup, threads, mult_cycles, machine).seconds,
                     4),
          Table::fmt(
              predict_sync_additive(corr, threads, mult_cycles, machine).seconds,
              4),
          Table::fmt(
              predict_async_additive(corr, threads, async_cycles, machine)
                  .seconds,
              4)};
      if (measure) {
        const Vector b = paper_rhs(rows, 0);
        Vector x1(rows, 0.0), x2(rows, 0.0), x3(rows, 0.0);
        row.push_back(Table::fmt(
            run_mult_threaded(setup, b, x1, mult_cycles, threads).seconds, 4));
        RuntimeOptions ro;
        ro.mode = ExecMode::kSynchronous;
        ro.t_max = mult_cycles;
        ro.num_threads = threads;
        row.push_back(
            Table::fmt(run_shared_memory(corr, b, x2, ro).seconds, 4));
        ro.mode = ExecMode::kAsynchronous;
        ro.rescomp = ResComp::kLocal;
        ro.t_max = async_cycles;
        row.push_back(
            Table::fmt(run_shared_memory(corr, b, x3, ro).seconds, 4));
      }
      table.add_row(std::move(row));
    }
  }
  table.emit(csv);
  std::cout << "\nExpected shape (paper Fig. 6): model-mult is lowest at 1-2 "
               "threads; model-asyncMA is lowest and flattest at high "
               "thread counts; sync Multadd sits between\n";
  return 0;
}
