// Harness overhead + fault-sweep bench: cost of the deterministic scripted
// driver relative to free-running async and synchronized execution, and the
// convergence impact of injected faults (stalls, dropped reads, killed
// teams) at increasing severity.
//
// Scripted replays pay global barriers per time instant plus a history
// ring-buffer push; this bench quantifies that price so "run the harness in
// CI" decisions are informed. The fault sweep doubles as a demonstration
// that Criterion-2 recovery keeps runs terminating under dead teams.

#include <iostream>

#include "async/runtime.hpp"
#include "async/schedule.hpp"
#include "bench_common.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sink.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

namespace {

RuntimeOptions base_options(std::size_t threads, int t_max) {
  RuntimeOptions ro;
  ro.write = WritePolicy::kAtomicWrite;
  ro.criterion = StopCriterion::kIndependent;
  ro.t_max = t_max;
  ro.num_threads = threads;
  return ro;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  // --smoke: one tiny size, one run, few cycles -- the CI configuration
  // (fast sanity run whose trace artifact is validated and uploaded).
  const bool smoke = cli.get_bool("smoke", false);
  const auto sizes = smoke ? std::vector<std::int64_t>{8}
                           : cli.get_int_list("sizes", {10, 14});
  const int runs = smoke ? 1 : static_cast<int>(cli.get_int("runs", 5));
  const int cycles =
      static_cast<int>(cli.get_int("cycles", smoke ? 6 : 20));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  // --trace-out <path>: after the sweep, run one scripted solve with a
  // logical-time telemetry sink and write the Chrome trace JSON there
  // (loadable at ui.perfetto.dev; see EXPERIMENTS.md).
  const std::string trace_out = cli.get("trace-out", "");

  std::cout << "Schedule-harness overhead and fault sweep: Multadd, "
            << "w-Jacobi, 7pt, " << threads << " threads, t_max=" << cycles
            << ", mean of " << runs << " runs\n\n";

  Table overhead({"grid-length", "rows", "mode", "seconds", "vs-async",
                  "rel-res"});

  for (std::int64_t n : sizes) {
    Problem prob = make_problem(TestSet::kFD7pt, static_cast<Index>(n));
    const MgSetup setup(std::move(prob.a),
                        paper_mg_options_for(TestSet::kFD7pt,
                                             SmootherType::kWeightedJacobi,
                                             0));
    const auto rows = static_cast<std::size_t>(setup.a(0).rows());
    AdditiveOptions ao;
    ao.kind = AdditiveKind::kMultadd;
    const AdditiveCorrector corr(setup, ao);

    struct ModeRow {
      std::string name;
      ExecMode mode;
      double alpha = 1.0;
      int delay = 0;
    };
    const std::vector<ModeRow> modes = {
        {"async free-run", ExecMode::kAsynchronous},
        {"sync", ExecMode::kSynchronous},
        {"scripted a=1 d=0", ExecMode::kScripted, 1.0, 0},
        {"scripted a=.7 d=2", ExecMode::kScripted, 0.7, 2},
    };

    double async_secs = 0.0;
    for (const ModeRow& m : modes) {
      std::vector<double> secs, rres;
      for (int run = 0; run < runs; ++run) {
        const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
        Vector x(rows, 0.0);
        RuntimeOptions ro = base_options(threads, cycles);
        ro.mode = m.mode;
        ro.script_alpha = m.alpha;
        ro.script_max_delay = m.delay;
        ro.seed = seed;
        const RuntimeResult rr = run_shared_memory(corr, b, x, ro);
        secs.push_back(rr.seconds);
        rres.push_back(rr.final_rel_res);
      }
      const double s = mean(secs);
      if (m.mode == ExecMode::kAsynchronous) async_secs = s;
      overhead.add_row(
          {std::to_string(n), std::to_string(rows), m.name,
           Table::fmt(s, 4),
           async_secs > 0.0 ? Table::fmt(s / async_secs, 3) + "x" : "1x",
           Table::fmt(mean(rres), 4)});
    }
  }
  overhead.emit();

  // Fault sweep on the largest size: stalls of increasing length on the
  // finest grid, dropped reads on a middle grid, and a killed coarse team
  // under Criterion 2 (master must recover, not hang).
  std::cout << "\nFault sweep (async free-run, Criterion 2, largest size)\n\n";
  Table faults({"fault", "seconds", "rel-res", "stalls", "drops", "killed"});

  Problem prob = make_problem(TestSet::kFD7pt,
                              static_cast<Index>(sizes.back()));
  const MgSetup setup(std::move(prob.a),
                      paper_mg_options_for(TestSet::kFD7pt,
                                           SmootherType::kWeightedJacobi, 0));
  const auto rows = static_cast<std::size_t>(setup.a(0).rows());
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  const AdditiveCorrector corr(setup, ao);
  const std::size_t ng = corr.num_grids();

  struct FaultRow {
    std::string name;
    FaultPlan plan;
  };
  std::vector<FaultRow> sweep;
  sweep.push_back({"none", {}});
  for (double ms : {0.5, 2.0}) {
    FaultPlan fp;
    fp.stalls.push_back({0, 2, 4, ms});
    sweep.push_back({"stall grid0 " + Table::fmt(ms, 2) + "ms", fp});
  }
  {
    FaultPlan fp;
    fp.dropped_reads.push_back({std::size_t{ng > 1 ? 1u : 0u}, 1, cycles});
    sweep.push_back({"drop reads grid1", fp});
  }
  {
    FaultPlan fp;
    fp.kills.push_back({ng - 1, cycles / 4});
    sweep.push_back({"kill coarsest team", fp});
  }

  for (const FaultRow& f : sweep) {
    std::vector<double> secs, rres;
    RuntimeResult last;
    for (int run = 0; run < runs; ++run) {
      const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
      Vector x(rows, 0.0);
      RuntimeOptions ro = base_options(threads, cycles);
      ro.criterion = StopCriterion::kMaster;
      ro.faults = &f.plan;
      ro.check_invariants = true;
      last = run_shared_memory(corr, b, x, ro);
      if (!last.invariants.conservation_ok) {
        std::cerr << "conservation FAILED for fault '" << f.name << "'\n";
        return 1;
      }
      secs.push_back(last.seconds);
      rres.push_back(last.final_rel_res);
    }
    faults.add_row({f.name, Table::fmt(mean(secs), 4),
                    Table::fmt(mean(rres), 4),
                    std::to_string(last.invariants.stalls_applied),
                    std::to_string(last.invariants.reads_dropped),
                    std::to_string(last.invariants.killed_grids.size())});
  }
  faults.emit();

  if (!trace_out.empty()) {
    TelemetryOptions to;
    to.logical_time = true;
    TelemetrySink sink(to);
    RuntimeOptions ro = base_options(threads, cycles);
    ro.mode = ExecMode::kScripted;
    ro.script_alpha = 0.7;
    ro.script_max_delay = 2;
    ro.seed = seed;
    ro.telemetry = &sink;
    const Vector b = paper_rhs(rows, 0);
    Vector x(rows, 0.0);
    run_shared_memory(corr, b, x, ro);
    const std::vector<DrainedEvent> events = sink.drain();
    ChromeTraceOptions copts;
    copts.logical_time = true;
    write_text_file(trace_out, chrome_trace_json(events, copts));
    std::cout << "\nwrote " << events.size() << " trace events ("
              << sink.dropped_total() << " dropped) to " << trace_out << "\n";
  }
  return 0;
}
