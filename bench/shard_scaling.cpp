// Sharded-executor scaling bench: sweeps shard count x channel latency on
// the REAL multi-threaded shard executor (src/shard), not the discrete-event
// model. For each point it reports wall time, achieved residual, mean
// corrections, and channel traffic (packets sent / dropped), and it always
// re-verifies the subsystem's core invariant first: the bulk-synchronous
// discipline is bitwise-identical to the single-shard oracle at every shard
// count (exit 1 on any mismatch, so CI catches a broken exchange).
//
// Writes a machine-readable summary to --json (default BENCH_shard.json).
// `--smoke` shrinks everything for CI: small problem, shards {1, 2, 4},
// zero-latency async only.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "shard/solver.hpp"
#include "util/timer.hpp"

namespace asyncmg {
namespace {

struct Measurement {
  std::size_t shards = 1;
  double latency_us = 0.0;
  double seconds = 0.0;
  double final_rel_res = 1.0;
  double mean_corrections = 0.0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
};

/// Synchronous oracle check: every shard count must produce bitwise the
/// same iterate as one shard. Returns false (and prints the first bad
/// index) on mismatch.
bool check_sync_oracle(const MgSetup& setup, const AdditiveOptions& ao,
                       const Vector& b, const std::vector<std::int64_t>& shards,
                       int t_max) {
  Vector x_oracle(b.size(), 0.0);
  {
    ShardOptions so;
    so.num_shards = 1;
    so.mode = ShardMode::kSynchronous;
    so.t_max = t_max;
    ShardedSolver solver(setup, ao, so);
    solver.solve(b, x_oracle);
  }
  for (std::int64_t s : shards) {
    if (s <= 1) continue;
    ShardOptions so;
    so.num_shards = static_cast<std::size_t>(s);
    so.mode = ShardMode::kSynchronous;
    so.t_max = t_max;
    ShardedSolver solver(setup, ao, so);
    Vector x(b.size(), 0.0);
    solver.solve(b, x);
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] != x_oracle[i]) {
        std::cerr << "FAIL: sync run with " << s
                  << " shards diverges from the 1-shard oracle at row " << i
                  << " (" << x[i] << " vs " << x_oracle[i] << ")\n";
        return false;
      }
    }
  }
  return true;
}

}  // namespace
}  // namespace asyncmg

int main(int argc, char** argv) {
  using namespace asyncmg;

  Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const Index n = static_cast<Index>(cli.get_int("n", smoke ? 8 : 14));
  const int t_max = static_cast<int>(cli.get_int("cycles", smoke ? 15 : 40));
  const auto shards = smoke ? std::vector<std::int64_t>{1, 2, 4}
                            : cli.get_int_list("shards", {1, 2, 4, 8});
  const auto latencies_us =
      smoke ? std::vector<double>{0.0}
            : cli.get_double_list("latencies-us", {0.0, 50.0, 200.0});
  const int max_lag = static_cast<int>(cli.get_int("max-lag", 3));
  const std::string json_path = cli.get("json", "BENCH_shard.json");

  Problem prob = make_problem(TestSet::kFD27pt, n);
  const MgSetup setup(std::move(prob.a),
                      bench::paper_mg_options(SmootherType::kWeightedJacobi,
                                              0.9, 1));
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());
  const Vector b = bench::paper_rhs(rows, 0);

  std::cout << "shard_scaling: 27pt " << n << "^3 (" << rows
            << " dofs), Multadd, " << t_max << " corrections per shard"
            << (smoke ? " (smoke)" : "") << "\n\n";

  if (!check_sync_oracle(setup, ao, b, shards, t_max)) return 1;
  std::cout << "sync oracle: all shard counts bitwise-match 1 shard\n\n";

  Table table({"shards", "latency-us", "time", "relres", "corr/shard",
               "pkts", "dropped"});
  std::vector<Measurement> runs;
  for (std::int64_t s : shards) {
    for (double lat : latencies_us) {
      ShardOptions so;
      so.num_shards = static_cast<std::size_t>(s);
      so.mode = ShardMode::kAsynchronous;
      so.t_max = t_max;
      so.latency_us = lat;
      so.max_lag = max_lag;
      ShardedSolver solver(setup, ao, so);
      Vector x(rows, 0.0);
      const ShardResult r = solver.solve(b, x);
      Measurement m;
      m.shards = so.num_shards;
      m.latency_us = lat;
      m.seconds = r.seconds;
      m.final_rel_res = r.final_rel_res;
      m.mean_corrections = r.mean_corrections();
      m.packets_sent = r.packets_sent;
      m.packets_dropped = r.packets_dropped;
      runs.push_back(m);
      table.add_row({std::to_string(s), Table::fmt(lat, 0),
                     Table::fmt(r.seconds, 4), Table::fmt(r.final_rel_res, 3),
                     Table::fmt(r.mean_corrections(), 3),
                     std::to_string(r.packets_sent),
                     std::to_string(r.packets_dropped)});
    }
  }
  table.emit(cli.get("csv", ""));
  std::cout << "\nReading: the free-running executor tolerates stale halos; "
               "residual degrades gracefully as latency (staleness) grows "
               "while per-shard throughput holds\n";

  std::ofstream out(json_path);
  out << "{\"bench\":\"shard_scaling\",\"problem\":\"27pt\",\"n\":" << n
      << ",\"cycles\":" << t_max << ",\"max_lag\":" << max_lag
      << ",\"smoke\":" << (smoke ? 1 : 0)
      << ",\"sync_bitwise_oracle\":\"pass\",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    if (i) out << ",";
    out << "{\"shards\":" << m.shards << ",\"latency_us\":" << m.latency_us
        << ",\"seconds\":" << m.seconds << ",\"final_rel_res\":"
        << m.final_rel_res << ",\"mean_corrections\":" << m.mean_corrections
        << ",\"packets_sent\":" << m.packets_sent << ",\"packets_dropped\":"
        << m.packets_dropped << "}";
  }
  out << "]}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
