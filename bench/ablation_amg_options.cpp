// Ablation: AMG setup choices (coarsening algorithm, interpolation,
// aggressive levels) versus V-cycles-to-tolerance and operator complexity.
// This backs the DESIGN.md discussion of why the paper's BoomerAMG options
// (HMIS + aggressive + classical modified interpolation) are a good
// operating point: aggressive coarsening trades a few extra cycles for a
// much cheaper hierarchy.

#include <iostream>

#include "bench_common.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Index n = static_cast<Index>(cli.get_int("n", 14));
  const int max_cycles = static_cast<int>(cli.get_int("max-cycles", 200));
  const double tol = cli.get_double("tol", 1e-9);
  const std::string csv = cli.get("csv", "");

  std::cout << "AMG option ablation (Mult V(1,1), w-Jacobi .9), tol " << tol
            << "\n  problems: 27pt " << n << "^3 (isotropic; interpolation "
               "choices nearly tie) and\n  7pt-aniso " << n
            << "^3 with eps=100 (strong x-coupling; interpolation quality "
               "matters)\n\n";

  Table table({"problem", "coarsening", "interp", "aggressive", "levels",
               "op-cx", "grid-cx", "V-cycles", "rel-res"});

  const std::vector<std::pair<std::string, CoarsenAlgo>> coarsenings = {
      {"RS", CoarsenAlgo::kRS},
      {"PMIS", CoarsenAlgo::kPMIS},
      {"HMIS", CoarsenAlgo::kHMIS}};
  const std::vector<std::pair<std::string, InterpAlgo>> interps = {
      {"direct", InterpAlgo::kDirect},
      {"classical-mod", InterpAlgo::kClassicalModified},
      {"multipass", InterpAlgo::kMultipass}};

  for (bool aniso : {false, true}) {
    for (const auto& [cname, calgo] : coarsenings) {
      for (const auto& [iname, ialgo] : interps) {
        for (int aggressive : {0, 1}) {
          Problem prob = aniso ? make_laplace_7pt_anisotropic(n, 100.0)
                               : make_problem(TestSet::kFD27pt, n);
          MgOptions mo =
              paper_mg_options(SmootherType::kWeightedJacobi, 0.9, aggressive);
          mo.amg.coarsening = calgo;
          mo.amg.interpolation = ialgo;
          const MgSetup setup(std::move(prob.a), mo);

          const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());
          const Vector b = paper_rhs(rows, 0);
          Vector x(rows, 0.0);
          MultiplicativeMg mg(setup);
          const SolveStats st = mg.solve(b, x, max_cycles, tol);

          table.add_row(
              {prob.name, cname, iname, std::to_string(aggressive),
               std::to_string(setup.num_levels()),
               Table::fmt(setup.hierarchy().operator_complexity(), 3),
               Table::fmt(setup.hierarchy().grid_complexity(), 3),
               st.converged ? std::to_string(st.cycles) : "+",
               Table::fmt(st.final_rel_res(), 3)});
        }
      }
    }
  }
  table.emit(csv);
  std::cout << "\nReading: aggressive coarsening cuts operator/grid "
               "complexity at the price of extra cycles; on the isotropic "
               "stencil the interpolations nearly tie, on the anisotropic "
               "problem the choice matters\n";
  return 0;
}
