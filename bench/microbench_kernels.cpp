// google-benchmark microbenchmarks for the sparse/smoothing kernels that
// dominate the solvers' inner loops.

#include <benchmark/benchmark.h>

#include <map>

#include "amg/hierarchy.hpp"
#include "backend/backend.hpp"
#include "mesh/problems.hpp"
#include "smoothers/smoother.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sellcs.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

const CsrMatrix& matrix27(int n) {
  static std::map<int, CsrMatrix> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, make_laplace_27pt(n).a).first;
  }
  return it->second;
}

void BM_Spmv(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  Rng rng(1);
  const Vector x = random_vector(static_cast<std::size_t>(a.cols()), rng);
  Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spmv)->Arg(10)->Arg(16)->Arg(24);

void BM_SpmvTranspose(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  Rng rng(2);
  const Vector x = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector y;
  for (auto _ : state) {
    a.spmv_transpose(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvTranspose)->Arg(10)->Arg(16);

void BM_Residual(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  Rng rng(3);
  const Vector x = random_vector(static_cast<std::size_t>(a.cols()), rng);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector r(b.size());
  for (auto _ : state) {
    a.residual(b, x, r);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Residual)->Arg(10)->Arg(16);

void BM_SellSpmv(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  const SellMatrix s =
      SellMatrix::from_csr(a, static_cast<Index>(state.range(1)), 256);
  Rng rng(1);
  const Vector x = random_vector(static_cast<std::size_t>(a.cols()), rng);
  Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    s.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SellSpmv)
    ->Args({10, 8})
    ->Args({16, 8})
    ->Args({24, 8})
    ->Args({16, 4})
    ->Args({16, 16});

void BM_FusedDiagSweepCsr(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  Rng rng(6);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), rng);
  const Vector d = random_vector(static_cast<std::size_t>(a.rows()), rng, 0.1,
                                 1.0);
  Vector x(b.size(), 0.0), xo(b.size());
  for (auto _ : state) {
    fused_diag_sweep(a, d, b, x, xo);
    x.swap(xo);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_FusedDiagSweepCsr)->Arg(10)->Arg(16)->Arg(24);

void BM_FusedDiagSweepSell(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  const SellMatrix s =
      SellMatrix::from_csr(a, static_cast<Index>(state.range(1)), 256);
  Rng rng(6);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), rng);
  const Vector d = random_vector(static_cast<std::size_t>(a.rows()), rng, 0.1,
                                 1.0);
  Vector x(b.size(), 0.0), xo(b.size());
  for (auto _ : state) {
    s.fused_diag_sweep(d, b, x, xo);
    x.swap(xo);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_FusedDiagSweepSell)
    ->Args({10, 8})
    ->Args({16, 8})
    ->Args({24, 8})
    ->Args({16, 16});

// Per-backend SELL kernels (DESIGN.md §15). Second arg selects the backend;
// runs on hosts without the ISA are skipped, mirroring the dispatcher's
// fallback. Bandwidth counts one matrix pass (values + column metadata, via
// sell_pass_bytes) plus the vector traffic; FLOPs are the 2·nnz multiply-
// accumulates.
void BM_BackendSellSpmv(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(1));
  if (!backend_supported(kind)) {
    state.SkipWithError("backend not supported on this host");
    return;
  }
  const KernelBackend& be = backend_for(kind);
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  const SellMatrix s = SellMatrix::from_csr(a, 8, 64);
  Rng rng(1);
  const Vector x = random_vector(static_cast<std::size_t>(a.cols()), rng);
  Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    be.sell_spmv(s, x, y, /*parallel=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  const double bytes = static_cast<double>(sell_pass_bytes(s)) +
                       16.0 * static_cast<double>(a.rows());
  state.counters["GB/s"] =
      benchmark::Counter(bytes, benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
  state.counters["GFLOP/s"] =
      benchmark::Counter(2.0 * static_cast<double>(a.nnz()),
                         benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BackendSellSpmv)
    ->Args({16, static_cast<int>(BackendKind::kScalar)})
    ->Args({16, static_cast<int>(BackendKind::kAvx2)})
    ->Args({16, static_cast<int>(BackendKind::kAvx512)})
    ->Args({24, static_cast<int>(BackendKind::kScalar)})
    ->Args({24, static_cast<int>(BackendKind::kAvx2)})
    ->Args({24, static_cast<int>(BackendKind::kAvx512)});

void BM_BackendSellSweep(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(1));
  if (!backend_supported(kind)) {
    state.SkipWithError("backend not supported on this host");
    return;
  }
  const KernelBackend& be = backend_for(kind);
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  const SellMatrix s = SellMatrix::from_csr(a, 8, 64);
  Rng rng(6);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), rng);
  const Vector d = random_vector(static_cast<std::size_t>(a.rows()), rng, 0.1,
                                 1.0);
  Vector x(b.size(), 0.0), xo(b.size());
  for (auto _ : state) {
    be.sell_diag_sweep(s, d, b, x, xo, /*parallel=*/false);
    x.swap(xo);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  const double bytes = static_cast<double>(sell_pass_bytes(s)) +
                       32.0 * static_cast<double>(a.rows());
  state.counters["GB/s"] =
      benchmark::Counter(bytes, benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) + 2.0 * static_cast<double>(a.rows()),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BackendSellSweep)
    ->Args({16, static_cast<int>(BackendKind::kScalar)})
    ->Args({16, static_cast<int>(BackendKind::kAvx2)})
    ->Args({16, static_cast<int>(BackendKind::kAvx512)})
    ->Args({24, static_cast<int>(BackendKind::kScalar)})
    ->Args({24, static_cast<int>(BackendKind::kAvx2)})
    ->Args({24, static_cast<int>(BackendKind::kAvx512)});

void BM_SellConvert(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SellMatrix s = SellMatrix::from_csr(a, 8, 256);
    benchmark::DoNotOptimize(s.stored_entries());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SellConvert)->Arg(16)->Arg(24);

void BM_SmootherSweep(benchmark::State& state) {
  const CsrMatrix& a = matrix27(12);
  SmootherOptions so;
  so.type = static_cast<SmootherType>(state.range(0));
  so.num_blocks = 8;
  const Smoother sm(a, so);
  Rng rng(4);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector x(b.size(), 0.0);
  for (auto _ : state) {
    sm.sweep(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SmootherSweep)
    ->Arg(static_cast<int>(SmootherType::kWeightedJacobi))
    ->Arg(static_cast<int>(SmootherType::kL1Jacobi))
    ->Arg(static_cast<int>(SmootherType::kHybridJGS))
    ->Arg(static_cast<int>(SmootherType::kAsyncGS));

void BM_SpGemmMultiply(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    CsrMatrix aa = multiply(a, a, threads);
    benchmark::DoNotOptimize(aa.nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpGemmMultiply)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({24, 1})
    ->Args({24, 4});

void BM_Transpose(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    CsrMatrix at = a.transpose(threads);
    benchmark::DoNotOptimize(at.nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({24, 1})
    ->Args({24, 4});

void BM_SpGemmGalerkin(benchmark::State& state) {
  const CsrMatrix& a = matrix27(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  const CsrMatrix s = strength_matrix(a, 0.25);
  Rng rng(5);
  const Splitting split = coarsen_hmis(s, rng);
  const CsrMatrix p = interp_classical_modified(a, s, split);
  for (auto _ : state) {
    CsrMatrix rap = galerkin_product(a, p, threads);
    benchmark::DoNotOptimize(rap.nnz());
  }
}
BENCHMARK(BM_SpGemmGalerkin)
    ->Args({8, 1})
    ->Args({12, 1})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4});

void BM_HierarchySetup(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Problem prob = make_laplace_27pt(static_cast<Index>(state.range(0)));
    state.ResumeTiming();
    Hierarchy h = Hierarchy::build(std::move(prob.a), {});
    benchmark::DoNotOptimize(h.num_levels());
  }
}
BENCHMARK(BM_HierarchySetup)->Arg(8)->Arg(12);

}  // namespace
}  // namespace asyncmg

BENCHMARK_MAIN();
