// Figure 5: same experiment as Figure 4 for the MFEM Laplace substitute
// (FEM Laplace on a sphere) with NO aggressive coarsening, w-Jacobi (.5)
// and async GS smoothing.
//
// Paper scale: --sizes large enough to reach ~30k rows; --threads 68.

#include <iostream>

#include "async/runtime.hpp"
#include "bench_common.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto sizes = cli.get_int_list("sizes", {8, 12, 16});
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const int cycles = static_cast<int>(cli.get_int("cycles", 20));
  const auto threads =
      static_cast<std::size_t>(cli.get_int("threads", 8));
  const std::string csv = cli.get("csv", "");

  std::cout << "Figure 5: MFEM Laplace (sphere FEM), no aggressive "
               "coarsening, rel res after "
            << cycles << " V-cycles, " << threads << " threads, mean of "
            << runs << " runs\n\n";

  Table table({"smoother", "method", "grid-length", "rows", "rel-res"});

  for (SmootherType st :
       {SmootherType::kWeightedJacobi, SmootherType::kAsyncGS}) {
    for (std::int64_t n : sizes) {
      Problem prob = make_problem(TestSet::kFemLaplace, static_cast<Index>(n));
      const MgSetup setup(std::move(prob.a),
                          paper_mg_options(st, 0.5, /*aggressive=*/0));
      const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());

      struct M {
        std::string name;
        AdditiveKind kind;
        bool is_mult;
        ExecMode mode;
        ResComp rescomp;
      };
      const std::vector<M> methods = {
          {"sync Mult", AdditiveKind::kMultadd, true, ExecMode::kSynchronous,
           ResComp::kLocal},
          {"sync Multadd", AdditiveKind::kMultadd, false,
           ExecMode::kSynchronous, ResComp::kLocal},
          {"sync AFACx", AdditiveKind::kAfacx, false, ExecMode::kSynchronous,
           ResComp::kLocal},
          {"Multadd local-res", AdditiveKind::kMultadd, false,
           ExecMode::kAsynchronous, ResComp::kLocal},
          {"Multadd global-res", AdditiveKind::kMultadd, false,
           ExecMode::kAsynchronous, ResComp::kGlobal},
          {"AFACx", AdditiveKind::kAfacx, false, ExecMode::kAsynchronous,
           ResComp::kLocal},
      };
      for (const M& m : methods) {
        std::vector<double> finals;
        for (int run = 0; run < runs; ++run) {
          const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
          Vector x(rows, 0.0);
          if (m.is_mult) {
            finals.push_back(
                run_mult_threaded(setup, b, x, cycles, threads).final_rel_res);
          } else {
            AdditiveOptions ao;
            ao.kind = m.kind;
            const AdditiveCorrector corr(setup, ao);
            RuntimeOptions ro;
            ro.mode = m.mode;
            ro.rescomp = m.rescomp;
            ro.write = WritePolicy::kLockWrite;
            ro.t_max = cycles;
            ro.num_threads = threads;
            finals.push_back(run_shared_memory(corr, b, x, ro).final_rel_res);
          }
        }
        table.add_row({smoother_name(st), m.name, std::to_string(n),
                       std::to_string(rows), Table::fmt(mean(finals), 4)});
      }
    }
  }
  table.emit(csv);
  std::cout << "\nExpected shape (paper Fig. 5): Multadd local-res "
               "lock-write stays grid-size independent; AFACx and "
               "global-res degrade on this set\n";
  return 0;
}
