// Figure 4: relative residual 2-norm after 20 V(1,1)-cycles versus number
// of rows, on the real shared-memory runtime. 7pt and 27pt test sets, two
// smoothers (w-Jacobi and async GS), methods:
//   sync Mult / sync Multadd / sync AFACx (lock-write)
//   async Multadd local-res + global-res (lock-write) / async AFACx
// Criterion 1, HMIS + one aggressive level, mean of `--runs` runs.
//
// Paper scale: --sizes 40,48,56,64,72,80 --threads 68 --runs 20.

#include <iostream>

#include "async/runtime.hpp"
#include "bench_common.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

namespace {

struct Method {
  std::string name;
  AdditiveKind kind;   // ignored for mult
  bool is_mult = false;
  ExecMode mode = ExecMode::kAsynchronous;
  ResComp rescomp = ResComp::kLocal;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto sizes = cli.get_int_list("sizes", {8, 12, 16});
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const int cycles = static_cast<int>(cli.get_int("cycles", 20));
  const auto threads =
      static_cast<std::size_t>(cli.get_int("threads", 8));
  const std::string csv = cli.get("csv", "");

  const std::vector<Method> methods = {
      {"sync Mult", AdditiveKind::kMultadd, true},
      {"sync Multadd", AdditiveKind::kMultadd, false,
       ExecMode::kSynchronous},
      {"sync AFACx", AdditiveKind::kAfacx, false, ExecMode::kSynchronous},
      {"Multadd local-res", AdditiveKind::kMultadd, false,
       ExecMode::kAsynchronous, ResComp::kLocal},
      {"Multadd global-res", AdditiveKind::kMultadd, false,
       ExecMode::kAsynchronous, ResComp::kGlobal},
      {"AFACx", AdditiveKind::kAfacx, false, ExecMode::kAsynchronous,
       ResComp::kLocal},
  };

  std::cout << "Figure 4: rel res after " << cycles << " V(1,1)-cycles, "
            << threads << " threads, lock-write, Criterion 1, mean of "
            << runs << " runs\n\n";

  Table table({"set", "smoother", "method", "grid-length", "rows",
               "rel-res"});

  for (TestSet set : {TestSet::kFD7pt, TestSet::kFD27pt}) {
    for (SmootherType st :
         {SmootherType::kWeightedJacobi, SmootherType::kAsyncGS}) {
      for (std::int64_t n : sizes) {
        Problem prob = make_problem(set, static_cast<Index>(n));
        const MgSetup setup(std::move(prob.a),
                            paper_mg_options_for(set, st, 1));
        const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());

        for (const Method& m : methods) {
          std::vector<double> finals;
          for (int run = 0; run < runs; ++run) {
            const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
            Vector x(rows, 0.0);
            if (m.is_mult) {
              finals.push_back(
                  run_mult_threaded(setup, b, x, cycles, threads)
                      .final_rel_res);
            } else {
              AdditiveOptions ao;
              ao.kind = m.kind;
              const AdditiveCorrector corr(setup, ao);
              RuntimeOptions ro;
              ro.mode = m.mode;
              ro.rescomp = m.rescomp;
              ro.write = WritePolicy::kLockWrite;
              ro.criterion = StopCriterion::kIndependent;
              ro.t_max = cycles;
              ro.num_threads = threads;
              finals.push_back(
                  run_shared_memory(corr, b, x, ro).final_rel_res);
            }
          }
          table.add_row({test_set_name(set), smoother_name(st), m.name,
                         std::to_string(n), std::to_string(rows),
                         Table::fmt(mean(finals), 4)});
        }
      }
    }
  }
  table.emit(csv);
  std::cout << "\nExpected shape (paper Fig. 4): every method's rel-res "
               "roughly flat in grid length; global-res converges slower "
               "than local-res (or diverges under extreme staleness)\n";
  return 0;
}
