// Distributed-memory extension (the paper's conclusion): sweeps the
// network latency and compares the asynchronous and bulk-synchronous
// disciplines of distributed additive multigrid on (a) simulated makespan
// for the same correction budget and (b) achieved residual. As latency
// grows, the synchronous discipline pays a barrier + round-trip per cycle
// while the asynchronous one keeps computing against (increasingly stale)
// residuals -- the trade the paper's Section VI anticipates.

#include <iostream>

#include "async/distributed.hpp"
#include "bench_common.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Index n = static_cast<Index>(cli.get_int("n", 12));
  const int t_max = static_cast<int>(cli.get_int("cycles", 30));
  const auto latencies =
      cli.get_double_list("latencies", {0.0, 1e-6, 1e-5, 1e-4, 1e-3});
  const std::string csv = cli.get("csv", "");

  Problem prob = make_problem(TestSet::kFD27pt, n);
  const MgSetup setup(std::move(prob.a),
                      paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1));
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  const AdditiveCorrector corr(setup, ao);
  const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());

  std::cout << "Distributed simulation: 27pt " << n << "^3, Multadd, "
            << t_max << " corrections per grid, one process group per grid\n\n";

  Table table({"latency", "async-time", "sync-time", "speedup",
               "async-relres", "sync-relres"});

  for (double lat : latencies) {
    DistributedOptions o;
    o.t_max = t_max;
    o.latency = lat;
    const Vector b = paper_rhs(rows, 0);
    Vector xa(rows, 0.0), xs(rows, 0.0);
    const DistributedResult ra = simulate_distributed_async(corr, b, xa, o);
    const DistributedResult rs = simulate_distributed_sync(corr, b, xs, o);
    table.add_row({Table::fmt(lat, 2), Table::fmt(ra.makespan, 4),
                   Table::fmt(rs.makespan, 4),
                   Table::fmt(rs.makespan / ra.makespan, 3),
                   Table::fmt(ra.final_rel_res, 3),
                   Table::fmt(rs.final_rel_res, 3)});
  }
  table.emit(csv);
  std::cout << "\nReading: the async discipline's makespan advantage grows "
               "with latency; its achieved residual degrades gracefully as "
               "reads go stale\n";
  return 0;
}
