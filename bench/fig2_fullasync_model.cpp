// Figure 2: final relative residual 2-norm after 20 V-cycles versus grid
// length for the fully asynchronous model, solution-based (Eq. 7) and
// residual-based (Eq. 10) versions of AFACx and Multadd. Minimum update
// probability .1; maximum delays {0,1,2,4,8}. 27pt test set, weighted
// Jacobi (.9), HMIS + one aggressive level.
//
// Paper scale: --sizes 40,48,56,64,72,80 --runs 20.

#include <iostream>

#include "async/model.hpp"
#include "bench_common.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto sizes = cli.get_int_list("sizes", {8, 12, 16});
  const auto delays = cli.get_int_list("delays", {0, 1, 2, 4, 8});
  const double alpha = cli.get_double("alpha", 0.1);
  const int runs = static_cast<int>(cli.get_int("runs", 5));
  const int cycles = static_cast<int>(cli.get_int("cycles", 20));
  const std::string csv = cli.get("csv", "");

  std::cout << "Figure 2: full-async model, alpha=" << alpha
            << ", 27pt, w-Jacobi(.9), " << cycles << " V-cycles, mean of "
            << runs << " runs\n\n";

  Table table(
      {"method", "version", "grid-length", "rows", "delta", "rel-res"});

  for (AdditiveKind kind : {AdditiveKind::kAfacx, AdditiveKind::kMultadd}) {
    for (std::int64_t n : sizes) {
      Problem prob = make_problem(TestSet::kFD27pt, static_cast<Index>(n));
      const MgSetup setup(
          std::move(prob.a),
          paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1));
      AdditiveOptions ao;
      ao.kind = kind;
      const AdditiveCorrector corr(setup, ao);
      const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());

      // Synchronous reference row.
      {
        std::vector<double> finals;
        for (int run = 0; run < runs; ++run) {
          const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
          Vector x(rows, 0.0);
          AdditiveMg mg(setup, ao);
          finals.push_back(mg.solve(b, x, cycles).final_rel_res());
        }
        table.add_row({additive_kind_name(kind), "sync", std::to_string(n),
                       std::to_string(rows), "-",
                       Table::fmt(mean(finals), 4)});
      }

      for (AsyncModelKind mk : {AsyncModelKind::kFullAsyncSolution,
                                AsyncModelKind::kFullAsyncResidual}) {
        const std::string version =
            mk == AsyncModelKind::kFullAsyncSolution ? "solution" : "residual";
        for (std::int64_t delta : delays) {
          std::vector<double> finals;
          for (int run = 0; run < runs; ++run) {
            const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
            Vector x(rows, 0.0);
            AsyncModelOptions mo;
            mo.kind = mk;
            mo.alpha = alpha;
            mo.max_delay = static_cast<int>(delta);
            mo.updates_per_grid = cycles;
            mo.seed = 2000 + static_cast<std::uint64_t>(run);
            finals.push_back(run_async_model(corr, b, x, mo).final_rel_res);
          }
          table.add_row({additive_kind_name(kind), version, std::to_string(n),
                         std::to_string(rows), std::to_string(delta),
                         Table::fmt(mean(finals), 4)});
        }
      }
    }
  }
  table.emit(csv);
  std::cout << "\nExpected shape (paper Fig. 2): larger delta converges "
               "slower; residual-based beats solution-based at large delta; "
               "all curves flat in the grid length\n";
  return 0;
}
