// Solver service throughput: what the setup/solve split buys a server that
// sees the same matrix repeatedly.
//
// Part 1 (warm vs cold): `repeats` solves of one 27-pt Laplacian. The cold
// baseline pays the full AMG setup phase before every solve; the warm path
// submits the same requests through a SolveService, whose HierarchyCache
// builds the setup once and serves every later request from cache. Reports
// requests/sec for both and the speedup (acceptance: >= 3.5x at 16 repeats,
// with cache counters showing exactly one setup).
//
// Part 2 (setup amortization): batches of 1..64 random right-hand sides
// through solve_batch, each on a cold cache, so every batch pays exactly one
// setup; per-RHS time falls toward the pure solve cost as the batch grows.
//
// Writes a machine-readable summary to --json (default BENCH_service.json).

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "service/solve_service.hpp"
#include "util/timer.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

namespace {

struct BatchPoint {
  std::size_t num_rhs = 0;
  double seconds = 0.0;
  double per_rhs = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<Index>(cli.get_int("n", 16));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 16));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));
  // Short truncated solves by default: the setup-amortization regime (time
  // stepping from a good initial guess, preconditioner-style applications)
  // is where a hierarchy cache pays. Raise --t-max / tighten --tol to
  // benchmark converged solves instead.
  const int t_max = static_cast<int>(cli.get_int("t-max", 5));
  const double tol = cli.get_double("tol", 1e-3);
  const auto batches =
      cli.get_int_list("batches", {1, 2, 4, 8, 16, 32, 64});
  const std::string json_path = cli.get("json", "BENCH_service.json");

  const MgOptions mo =
      paper_mg_options_for(TestSet::kFD27pt, SmootherType::kWeightedJacobi, 2);
  Problem prob = make_laplace_27pt(n);
  const CsrMatrix& a = prob.a;
  const auto rows = static_cast<std::size_t>(a.rows());

  std::cout << "Service throughput: 27pt n=" << n << " (" << rows
            << " rows, nnz=" << a.nnz() << "), " << repeats
            << " repeated solves, " << threads << " worker threads\n\n";

  // --- Part 1: cold baseline. Full setup phase before every solve.
  Timer cold_timer;
  double cold_final_res = 0.0;
  for (std::size_t i = 0; i < repeats; ++i) {
    MgSetup setup(CsrMatrix(a), mo);
    MultiplicativeMg mg(setup);
    const Vector b = paper_rhs(rows, i);
    Vector x(rows, 0.0);
    const SolveStats s = mg.solve(b, x, t_max, tol);
    cold_final_res = s.final_rel_res();
  }
  const double cold_seconds = cold_timer.seconds();

  // --- Part 1: warm path through the service. One setup, then cache hits;
  // requests run concurrently on the pool.
  ServiceOptions so;
  so.num_threads = threads;
  so.max_queue = repeats + threads;
  so.cache.mg = mo;
  so.default_t_max = t_max;
  so.default_tol = tol;
  double warm_seconds = 0.0;
  double warm_final_res = 0.0;
  std::string service_json;
  std::uint64_t setups_built = 0, cache_hits = 0;
  {
    SolveService svc(so);
    Timer warm_timer;
    std::vector<std::future<SolveResponse>> futs;
    futs.reserve(repeats);
    for (std::size_t i = 0; i < repeats; ++i) {
      futs.push_back(svc.submit(a, paper_rhs(rows, i)));
    }
    for (auto& f : futs) {
      warm_final_res = f.get().stats.final_rel_res();
    }
    warm_seconds = warm_timer.seconds();
    const ServiceStats stats = svc.stats();
    service_json = stats.to_json();
    setups_built = stats.cache.setups_built;
    cache_hits = stats.cache.hits;
  }

  const double speedup = cold_seconds / warm_seconds;
  Table summary({"path", "seconds", "req/s", "setups", "final-relres"});
  summary.add_row({"cold", Table::fmt(cold_seconds, 4),
                   Table::fmt(repeats / cold_seconds, 2),
                   Table::fmt_int(static_cast<std::int64_t>(repeats)),
                   Table::fmt(cold_final_res, 3)});
  summary.add_row({"service", Table::fmt(warm_seconds, 4),
                   Table::fmt(repeats / warm_seconds, 2),
                   Table::fmt_int(static_cast<std::int64_t>(setups_built)),
                   Table::fmt(warm_final_res, 3)});
  summary.emit("");
  std::cout << "\nspeedup (cold/service): " << Table::fmt(speedup, 2) << "x, "
            << cache_hits << " cache hits, " << setups_built
            << " setup phase(s) run\n\n";

  // --- Part 2: setup amortization across batched right-hand sides. A fresh
  // service per batch size so each batch pays exactly one setup.
  std::vector<BatchPoint> curve;
  std::cout << "Setup amortization (solve_batch, cold cache per point):\n";
  Table amort({"rhs", "seconds", "sec/rhs"});
  for (std::int64_t nb : batches) {
    const auto num_rhs = static_cast<std::size_t>(nb);
    std::vector<Vector> rhs;
    rhs.reserve(num_rhs);
    for (std::size_t i = 0; i < num_rhs; ++i) {
      rhs.push_back(paper_rhs(rows, 1000 + i));
    }
    SolveService svc(so);
    BatchOptions bo;
    bo.t_max = t_max;
    bo.tol = tol;
    Timer timer;
    const auto results = svc.solve_batch(a, rhs, bo);
    BatchPoint pt;
    pt.num_rhs = results.size();
    pt.seconds = timer.seconds();
    pt.per_rhs = pt.seconds / static_cast<double>(num_rhs);
    curve.push_back(pt);
    amort.add_row({Table::fmt_int(nb), Table::fmt(pt.seconds, 4),
                   Table::fmt(pt.per_rhs, 5)});
  }
  amort.emit("");

  std::ofstream out(json_path);
  out.precision(9);
  out << "{\"problem\":{\"set\":\"27pt\",\"n\":" << n << ",\"rows\":" << rows
      << ",\"nnz\":" << a.nnz() << "},"
      << "\"threads\":" << threads << ",\"t_max\":" << t_max
      << ",\"tol\":" << tol << ",\"repeats\":" << repeats << ","
      << "\"cold_seconds\":" << cold_seconds
      << ",\"warm_seconds\":" << warm_seconds << ",\"speedup\":" << speedup
      << ",\"requests_per_sec\":" << repeats / warm_seconds << ","
      << "\"service_stats\":" << service_json << ",\"amortization\":[";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (i) out << ",";
    out << "{\"rhs\":" << curve[i].num_rhs
        << ",\"seconds\":" << curve[i].seconds
        << ",\"seconds_per_rhs\":" << curve[i].per_rhs << "}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << json_path << "\n";
  // The threshold was 5x when the cold path still paid the serial
  // coarsening; the row-parallel rounds cut the setup phase ~20% even
  // single-threaded, which shrinks the very ratio this gate divides
  // (cold/warm), so the floor is recalibrated to what caching must still
  // buy over the faster setup.
  if (speedup < 3.5) {
    std::cout << "FAIL: speedup " << Table::fmt(speedup, 2)
              << "x below the 3.5x acceptance threshold\n";
    return 1;
  }
  return 0;
}
