#pragma once
// Shared plumbing for the experiment harnesses: paper-default solver
// configurations, problem construction, and run averaging.
//
// Every bench accepts --sizes/--runs/--threads/... so the paper-scale
// parameters are one flag away; the defaults are scaled down to finish
// quickly on a small machine (see EXPERIMENTS.md).

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "multigrid/setup.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace asyncmg::bench {

/// The paper's BoomerAMG-style options: HMIS coarsening, classical modified
/// interpolation, `aggressive` aggressive levels.
inline MgOptions paper_mg_options(SmootherType st, double omega,
                                  int aggressive) {
  MgOptions mo;
  mo.amg.coarsening = CoarsenAlgo::kHMIS;
  mo.amg.interpolation = InterpAlgo::kClassicalModified;
  mo.amg.num_aggressive_levels = aggressive;
  mo.smoother.type = st;
  mo.smoother.omega = omega;
  mo.smoother.num_blocks = 4;
  return mo;
}

/// omega used by the paper per test set: .9 for the stencils, .5 for the
/// MFEM sets.
inline double paper_omega(TestSet set) {
  return (set == TestSet::kFD7pt || set == TestSet::kFD27pt) ? 0.9 : 0.5;
}

/// Test-set-aware options: elasticity additionally runs unknown-based AMG
/// (BoomerAMG's num_functions = 3 for interleaved displacement components)
/// and skips aggressive coarsening -- at our scaled-down beam sizes a
/// distance-2 pass over-coarsens to a 2-level hierarchy whose multipass
/// interpolation cannot represent the elastic near-nullspace (the paper's
/// 37k-dof beam can afford it; see EXPERIMENTS.md).
inline MgOptions paper_mg_options_for(TestSet set, SmootherType st,
                                      int aggressive) {
  if (set == TestSet::kFemElasticity) aggressive = 0;
  MgOptions mo = paper_mg_options(st, paper_omega(set), aggressive);
  if (set == TestSet::kFemElasticity) mo.amg.num_functions = 3;
  return mo;
}

inline SmootherType smoother_from_name(const std::string& name) {
  if (name == "w-jacobi") return SmootherType::kWeightedJacobi;
  if (name == "l1-jacobi") return SmootherType::kL1Jacobi;
  if (name == "hybrid-jgs") return SmootherType::kHybridJGS;
  if (name == "async-gs") return SmootherType::kAsyncGS;
  throw std::invalid_argument("unknown smoother: " + name);
}

inline TestSet test_set_from_name(const std::string& name) {
  if (name == "7pt") return TestSet::kFD7pt;
  if (name == "27pt") return TestSet::kFD27pt;
  if (name == "mfem-laplace") return TestSet::kFemLaplace;
  if (name == "mfem-elasticity") return TestSet::kFemElasticity;
  throw std::invalid_argument("unknown test set: " + name);
}

/// Random right-hand side in [-1, 1] (Section V), seeded per run index.
inline Vector paper_rhs(std::size_t n, std::uint64_t run) {
  Rng rng(0x5eed0000ull + run);
  return random_vector(n, rng);
}

}  // namespace asyncmg::bench
