// AMG setup-phase thread-scaling bench: wall time of the full setup and a
// per-phase breakdown (strength / coarsen / interp / RAP) as a function of
// the setup thread count, plus a cold-request latency comparison with and
// without the background setup pipeline. Writes a machine-readable summary
// to --json (default BENCH_setup.json).
//
// The per-phase numbers come from re-running the build loop phase by phase
// through the public kernel APIs with the same options -- and, via
// coarsen_level_seed, the exact same per-level splittings -- as
// Hierarchy::build. Each level's four phase timings are committed together
// only once the level completes, and the mirrored level count is checked
// against the end-to-end build (exit 2 on mismatch): without that check a
// level collapsing under aggressive coarsening lets a dangling RAP or
// interp timing smear into the previous level's numbers.
//
// Determinism gate: at every thread count and level, the parallel C/F
// splitting is compared bitwise against coarsen_parallel_oracle (and the
// aggressive second stage against its own single-thread run). Any mismatch
// makes the bench exit 1 -- CI treats parallel-coarsening determinism as a
// hard failure, not a perf number.
//
// Speedup is whatever the hardware gives: on a single-core container every
// thread count measures ~1x, and that is reported honestly rather than
// failing the run (the JSON carries hardware_threads for context).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "amg/coarsen.hpp"
#include "amg/hierarchy.hpp"
#include "amg/interp.hpp"
#include "amg/strength.hpp"
#include "bench_common.hpp"
#include "service/solve_service.hpp"
#include "sparse/spgemm.hpp"
#include "util/timer.hpp"

namespace asyncmg {
namespace {

struct PhaseTimes {
  double strength = 0.0;
  double coarsen = 0.0;
  double coarsen_oracle = 0.0;  // serial naive-rounds reference, untimed path
  double interp = 0.0;
  double rap = 0.0;
  double total = 0.0;  // end-to-end Hierarchy::build, measured separately
  int levels = 0;      // levels of the end-to-end hierarchy
  bool deterministic = true;
  bool attribution_ok = true;
};

bool same_splitting(const Splitting& a, const Splitting& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

/// Mirrors Hierarchy::build level by level, timing each phase. Options match
/// bench::paper_mg_options (HMIS + classical modified interpolation); the
/// splitting runs the default row-parallel path with the build's per-level
/// seeds, so the mirrored hierarchy is the built hierarchy.
PhaseTimes run_setup(const CsrMatrix& a_fine, const AmgOptions& opts) {
  PhaseTimes pt;
  Timer timer;
  {
    Hierarchy h = Hierarchy::build(a_fine, opts);
    pt.total = timer.seconds();
    pt.levels = static_cast<int>(h.num_levels());
    if (h.num_levels() < 2) {
      std::cerr << "warning: hierarchy degenerated to one level\n";
    }
  }

  CsrMatrix a = a_fine;
  int mirrored = 0;
  for (Index lvl = 0; lvl + 1 < opts.max_levels; ++lvl) {
    if (a.rows() <= opts.coarse_size) break;

    // Phase timings accumulate into locals and commit only when the level
    // completes: a level that stalls mid-phase must not leak partial
    // timings into the totals.
    timer.reset();
    const CsrMatrix s = strength_matrix(a, opts.strength_theta,
                                        opts.strength_norm, opts.num_functions,
                                        opts.setup_threads);
    const double t_strength = timer.seconds();

    CoarsenParams cp;
    cp.algo = opts.coarsening;
    cp.weights = opts.coarsen_weights;
    cp.seed = coarsen_level_seed(opts.seed, lvl);
    cp.num_threads = opts.setup_threads;
    const bool aggressive =
        lvl < static_cast<Index>(opts.num_aggressive_levels);

    timer.reset();
    Splitting split = coarsen_parallel(s, cp);
    Splitting aggr_split;
    if (aggressive) aggr_split = coarsen_aggressive_parallel(s, split, cp);
    const double t_coarsen = timer.seconds();

    // Determinism gate: the timed parallel splitting against the naive
    // serial oracle of the same rounds, and the aggressive stage against
    // its single-thread self.
    timer.reset();
    if (!same_splitting(split, coarsen_parallel_oracle(s, cp))) {
      std::cerr << "DETERMINISM FAILURE: coarsen_parallel != oracle at level "
                << lvl << " (threads=" << opts.setup_threads << ")\n";
      pt.deterministic = false;
    }
    pt.coarsen_oracle += timer.seconds();
    if (aggressive) {
      CoarsenParams cp1 = cp;
      cp1.num_threads = 1;
      if (!same_splitting(aggr_split,
                          coarsen_aggressive_parallel(s, split, cp1))) {
        std::cerr << "DETERMINISM FAILURE: aggressive stage thread-dependent "
                     "at level "
                  << lvl << " (threads=" << opts.setup_threads << ")\n";
        pt.deterministic = false;
      }
      split = std::move(aggr_split);
    }

    const Index nc = count_coarse(split);
    if (nc == 0 || nc >= a.rows() ||
        static_cast<double>(nc) >
            opts.max_coarsen_ratio * static_cast<double>(a.rows())) {
      break;  // stalled before interpolation: discard this level's timings
    }

    timer.reset();
    const InterpAlgo interp_algo =
        aggressive ? InterpAlgo::kMultipass : opts.interpolation;
    CsrMatrix p = build_interpolation(interp_algo, a, s, split,
                                      opts.setup_threads);
    p = truncate_interpolation(p, opts.trunc_factor, opts.setup_threads);
    const double t_interp = timer.seconds();

    timer.reset();
    a = galerkin_product(a, p, opts.setup_threads);
    const double t_rap = timer.seconds();

    // Level complete: commit all four phases together.
    pt.strength += t_strength;
    pt.coarsen += t_coarsen;
    pt.interp += t_interp;
    pt.rap += t_rap;
    ++mirrored;
  }

  // Phase-attribution check: the mirror must have built exactly the levels
  // the end-to-end build did, or the per-phase sums describe a different
  // hierarchy.
  if (mirrored + 1 != pt.levels) {
    std::cerr << "ATTRIBUTION FAILURE: mirrored " << (mirrored + 1)
              << " levels, Hierarchy::build made " << pt.levels << "\n";
    pt.attribution_ok = false;
  }
  return pt;
}

/// One cold request against a fresh SolveService; returns wall seconds of
/// submit()..get() and reports the partial-cycle count through `resp`.
double cold_request_seconds(const CsrMatrix& a, const Vector& b,
                            std::size_t threads, bool background,
                            SolveResponse& resp) {
  ServiceOptions so;
  so.num_threads = threads;
  so.cache.mg =
      bench::paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1);
  so.background_setup = background;
  SolveService svc(so);
  Timer timer;
  resp = svc.submit(a, b).get();
  return timer.seconds();
}

}  // namespace
}  // namespace asyncmg

int main(int argc, char** argv) {
  using namespace asyncmg;

  Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const Index n = static_cast<Index>(cli.get_int("n", smoke ? 12 : 32));
  const auto threads = smoke ? std::vector<std::int64_t>{1, 2}
                             : cli.get_int_list("threads", {1, 2, 4, 8});
  const int repeats = static_cast<int>(cli.get_int("repeats", smoke ? 1 : 3));
  const int aggressive = static_cast<int>(cli.get_int("aggressive", 1));
  const std::string json_path = cli.get("json", "BENCH_setup.json");
  const unsigned hw = std::thread::hardware_concurrency();

  std::cout << "setup_scaling: 27pt Laplacian n=" << n << " ("
            << n * n * n << " dofs), " << repeats
            << " repeats, hardware_threads=" << hw << "\n";
  if (hw <= 1) {
    std::cout << "  note: single-hardware-thread machine; thread-sweep "
                 "speedups are expected to be ~1x (see EXPERIMENTS.md)\n";
  }
  const CsrMatrix a = make_laplace_27pt(n).a;

  AmgOptions opts =
      bench::paper_mg_options(SmootherType::kWeightedJacobi, 0.9, aggressive)
          .amg;

  struct Row {
    int threads;
    PhaseTimes best;
  };
  std::vector<Row> rows;
  bool deterministic = true;
  bool attribution_ok = true;
  for (std::int64_t t : threads) {
    opts.setup_threads = static_cast<int>(t);
    PhaseTimes best;
    for (int r = 0; r < repeats; ++r) {
      const PhaseTimes pt = run_setup(a, opts);
      deterministic = deterministic && pt.deterministic;
      attribution_ok = attribution_ok && pt.attribution_ok;
      if (r == 0 || pt.total < best.total) best = pt;
    }
    rows.push_back({static_cast<int>(t), best});
    std::cout << "  threads=" << t << ": total " << best.total << " s"
              << "  (strength " << best.strength << ", coarsen "
              << best.coarsen << " [oracle " << best.coarsen_oracle
              << "], interp " << best.interp << ", RAP " << best.rap
              << ")  levels=" << best.levels << "\n";
  }

  const double base = rows.empty() ? 0.0 : rows.front().best.total;
  const double coarsen_base = rows.empty() ? 0.0 : rows.front().best.coarsen;
  for (const Row& r : rows) {
    std::cout << "  speedup x" << r.threads << " = "
              << (r.best.total > 0.0 ? base / r.best.total : 0.0)
              << "  (coarsen "
              << (r.best.coarsen > 0.0 ? coarsen_base / r.best.coarsen : 0.0)
              << ")\n";
  }

  // Cold-request latency: the same matrix through a fresh service, blocking
  // setup vs the background pipeline (partial cycles while levels land).
  const std::size_t svc_threads =
      static_cast<std::size_t>(threads.empty() ? 2 : threads.back());
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveResponse blocking_resp;
  SolveResponse background_resp;
  const double blocking_s =
      cold_request_seconds(a, b, svc_threads, false, blocking_resp);
  const double background_s =
      cold_request_seconds(a, b, svc_threads, true, background_resp);
  std::cout << "  cold request: blocking " << blocking_s << " s ("
            << blocking_resp.stats.cycles << " cycles), background "
            << background_s << " s (" << background_resp.stats.cycles
            << " cycles, " << background_resp.partial_cycles
            << " on partial hierarchies)\n";

  std::ofstream out(json_path);
  out << "{\"bench\":\"setup_scaling\",\"problem\":\"27pt\",\"n\":" << n
      << ",\"dofs\":" << n * n * n << ",\"repeats\":" << repeats
      << ",\"aggressive\":" << aggressive
      << ",\"hardware_threads\":" << hw
      << ",\"deterministic\":" << (deterministic ? "true" : "false")
      << ",\"runs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i) out << ",";
    out << "{\"threads\":" << r.threads << ",\"total_seconds\":"
        << r.best.total << ",\"speedup\":"
        << (r.best.total > 0.0 ? base / r.best.total : 0.0)
        << ",\"levels\":" << r.best.levels
        << ",\"phases\":{\"strength\":" << r.best.strength << ",\"coarsen\":"
        << r.best.coarsen << ",\"coarsen_oracle\":" << r.best.coarsen_oracle
        << ",\"interp\":" << r.best.interp << ",\"rap\":"
        << r.best.rap << "}"
        << ",\"coarsen_speedup\":"
        << (r.best.coarsen > 0.0 ? coarsen_base / r.best.coarsen : 0.0)
        << "}";
  }
  out << "],\"cold_request\":{\"threads\":" << svc_threads
      << ",\"blocking_seconds\":" << blocking_s
      << ",\"blocking_cycles\":" << blocking_resp.stats.cycles
      << ",\"background_seconds\":" << background_s
      << ",\"background_cycles\":" << background_resp.stats.cycles
      << ",\"background_partial_cycles\":" << background_resp.partial_cycles
      << "}}\n";
  std::cout << "\nwrote " << json_path << "\n";

  if (!deterministic) {
    std::cerr << "FAILED: parallel coarsening disagreed with the serial "
                 "oracle\n";
    return 1;
  }
  if (!attribution_ok) {
    std::cerr << "FAILED: per-phase attribution diverged from the "
                 "end-to-end build\n";
    return 2;
  }
  return 0;
}
