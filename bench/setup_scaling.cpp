// AMG setup-phase thread-scaling bench: wall time of the full setup and a
// per-phase breakdown (strength / coarsen / interp / RAP) as a function of
// the setup thread count. Writes a machine-readable summary to --json
// (default BENCH_setup.json).
//
// The per-phase numbers come from re-running the build loop phase by phase
// through the public kernel APIs with the same options Hierarchy::build
// uses, so they add up to (slightly less than) the end-to-end build time.
//
// Speedup is whatever the hardware gives: on a single-core container every
// thread count measures ~1x, and that is reported honestly rather than
// failing the run.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sparse/spgemm.hpp"
#include "util/timer.hpp"

namespace asyncmg {
namespace {

struct PhaseTimes {
  double strength = 0.0;
  double coarsen = 0.0;
  double interp = 0.0;
  double rap = 0.0;
  double total = 0.0;  // end-to-end Hierarchy::build, measured separately
};

/// Mirrors Hierarchy::build level by level, timing each phase. Options match
/// bench::paper_mg_options (HMIS + classical modified interpolation).
PhaseTimes run_setup(const CsrMatrix& a_fine, const AmgOptions& opts) {
  PhaseTimes pt;
  Timer timer;
  {
    Hierarchy h = Hierarchy::build(a_fine, opts);
    pt.total = timer.seconds();
    if (h.num_levels() < 2) {
      std::cerr << "warning: hierarchy degenerated to one level\n";
    }
  }

  Rng rng(opts.seed);
  CsrMatrix a = a_fine;
  for (Index lvl = 0; lvl + 1 < opts.max_levels; ++lvl) {
    if (a.rows() <= opts.coarse_size) break;

    timer.reset();
    const CsrMatrix s = strength_matrix(a, opts.strength_theta,
                                        opts.strength_norm, opts.num_functions,
                                        opts.setup_threads);
    pt.strength += timer.seconds();

    timer.reset();
    Splitting split = coarsen(opts.coarsening, s, rng);
    const bool aggressive =
        lvl < static_cast<Index>(opts.num_aggressive_levels);
    if (aggressive) {
      split = coarsen_aggressive(opts.coarsening, s, split, rng,
                                 opts.setup_threads);
    }
    pt.coarsen += timer.seconds();

    const Index nc = count_coarse(split);
    if (nc == 0 || nc >= a.rows() ||
        static_cast<double>(nc) >
            opts.max_coarsen_ratio * static_cast<double>(a.rows())) {
      break;
    }

    timer.reset();
    const InterpAlgo interp_algo =
        aggressive ? InterpAlgo::kMultipass : opts.interpolation;
    CsrMatrix p = build_interpolation(interp_algo, a, s, split,
                                      opts.setup_threads);
    p = truncate_interpolation(p, opts.trunc_factor, opts.setup_threads);
    pt.interp += timer.seconds();

    timer.reset();
    a = galerkin_product(a, p, opts.setup_threads);
    pt.rap += timer.seconds();
  }
  return pt;
}

}  // namespace
}  // namespace asyncmg

int main(int argc, char** argv) {
  using namespace asyncmg;

  Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const Index n = static_cast<Index>(cli.get_int("n", smoke ? 12 : 32));
  const auto threads = smoke ? std::vector<std::int64_t>{1, 2}
                             : cli.get_int_list("threads", {1, 2, 4, 8});
  const int repeats = static_cast<int>(cli.get_int("repeats", smoke ? 1 : 3));
  const int aggressive = static_cast<int>(cli.get_int("aggressive", 1));
  const std::string json_path = cli.get("json", "BENCH_setup.json");

  std::cout << "setup_scaling: 27pt Laplacian n=" << n << " ("
            << n * n * n << " dofs), " << repeats << " repeats\n";
  const CsrMatrix a = make_laplace_27pt(n).a;

  AmgOptions opts =
      bench::paper_mg_options(SmootherType::kWeightedJacobi, 0.9, aggressive)
          .amg;

  struct Row {
    int threads;
    PhaseTimes best;
  };
  std::vector<Row> rows;
  for (std::int64_t t : threads) {
    opts.setup_threads = static_cast<int>(t);
    PhaseTimes best;
    for (int r = 0; r < repeats; ++r) {
      const PhaseTimes pt = run_setup(a, opts);
      if (r == 0 || pt.total < best.total) best = pt;
    }
    rows.push_back({static_cast<int>(t), best});
    std::cout << "  threads=" << t << ": total " << best.total << " s"
              << "  (strength " << best.strength << ", coarsen "
              << best.coarsen << ", interp " << best.interp << ", RAP "
              << best.rap << ")\n";
  }

  const double base = rows.empty() ? 0.0 : rows.front().best.total;
  for (const Row& r : rows) {
    std::cout << "  speedup x" << r.threads << " = "
              << (r.best.total > 0.0 ? base / r.best.total : 0.0) << "\n";
  }

  std::ofstream out(json_path);
  out << "{\"bench\":\"setup_scaling\",\"problem\":\"27pt\",\"n\":" << n
      << ",\"dofs\":" << n * n * n << ",\"repeats\":" << repeats
      << ",\"aggressive\":" << aggressive << ",\"runs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i) out << ",";
    out << "{\"threads\":" << r.threads << ",\"total_seconds\":"
        << r.best.total << ",\"speedup\":"
        << (r.best.total > 0.0 ? base / r.best.total : 0.0)
        << ",\"phases\":{\"strength\":" << r.best.strength << ",\"coarsen\":"
        << r.best.coarsen << ",\"interp\":" << r.best.interp << ",\"rap\":"
        << r.best.rap << "}}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
