// Table I: wall-clock time, average corrections ("corrects"), and V-cycles
// needed to reach ||r||/||b|| < 1e-9 for four test matrices, four smoothers,
// and twelve methods (sync Mult; sync/async Multadd and AFACx under
// lock/atomic write policies, local/global residuals, and the residual-based
// r-Multadd). Asynchronous methods use Criterion 2 (a master thread stops
// everyone once all grids reached t_max corrections).
//
// Following Section V, the time-to-tolerance is found by sweeping t_max in
// steps and reporting the first t_max whose mean relative residual falls
// below the tolerance; each point averages `--runs` runs. A dagger (+)
// marks divergence.
//
// Paper scale: --sizes 30,30,29,18 --threads 272 --runs 20 --max-cycles 400.
// Note: absolute times on this container are not comparable to the paper's
// 68-core KNL; see bench/fig6_thread_scaling for the machine-model
// reproduction of the scaling shape.

#include <cmath>
#include <iostream>
#include <optional>

#include "async/runtime.hpp"
#include "bench_common.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

namespace {

struct Method {
  std::string name;
  bool is_mult = false;
  ExecMode mode = ExecMode::kAsynchronous;
  AdditiveKind kind = AdditiveKind::kMultadd;
  WritePolicy write = WritePolicy::kLockWrite;
  ResComp rescomp = ResComp::kLocal;
  bool residual_based = false;
};

std::vector<Method> methods() {
  using WK = WritePolicy;
  using RC = ResComp;
  using EM = ExecMode;
  return {
      {"sync Mult", true},
      {"sync Multadd, lock-write", false, EM::kSynchronous,
       AdditiveKind::kMultadd, WK::kLockWrite},
      {"sync Multadd, atomic-write", false, EM::kSynchronous,
       AdditiveKind::kMultadd, WK::kAtomicWrite},
      {"sync AFACx, lock-write", false, EM::kSynchronous,
       AdditiveKind::kAfacx, WK::kLockWrite},
      {"sync AFACx, atomic-write", false, EM::kSynchronous,
       AdditiveKind::kAfacx, WK::kAtomicWrite},
      {"AFACx, lock-write", false, EM::kAsynchronous, AdditiveKind::kAfacx,
       WK::kLockWrite},
      {"AFACx, atomic-write", false, EM::kAsynchronous, AdditiveKind::kAfacx,
       WK::kAtomicWrite},
      {"Multadd, lock-write, global-res", false, EM::kAsynchronous,
       AdditiveKind::kMultadd, WK::kLockWrite, RC::kGlobal},
      {"Multadd, lock-write, local-res", false, EM::kAsynchronous,
       AdditiveKind::kMultadd, WK::kLockWrite, RC::kLocal},
      {"Multadd, atomic-write, global-res", false, EM::kAsynchronous,
       AdditiveKind::kMultadd, WK::kAtomicWrite, RC::kGlobal},
      {"Multadd, atomic-write, local-res", false, EM::kAsynchronous,
       AdditiveKind::kMultadd, WK::kAtomicWrite, RC::kLocal},
      {"r-Multadd, atomic-write, local-res", false, EM::kAsynchronous,
       AdditiveKind::kMultadd, WK::kAtomicWrite, RC::kLocal, true},
  };
}

struct Cell {
  std::optional<double> time;
  std::optional<double> corrects;
  std::optional<int> vcycles;
};

struct SweepConfig {
  int step = 5;
  int max_cycles = 150;
  int runs = 2;
  double tol = 1e-9;
  std::size_t threads = 8;
};

/// Runs one method at fixed t_max; returns (mean seconds, mean rel res,
/// mean corrects).
struct Point {
  double seconds = 0.0;
  double rel_res = 0.0;
  double corrects = 0.0;
};

Point run_point(const MgSetup& setup, const Method& m, int t_max,
                const SweepConfig& cfg) {
  const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());
  std::vector<double> secs, res, cor;
  for (int run = 0; run < cfg.runs; ++run) {
    const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
    Vector x(rows, 0.0);
    RuntimeResult rr;
    if (m.is_mult) {
      rr = run_mult_threaded(setup, b, x, t_max, cfg.threads);
    } else {
      AdditiveOptions ao;
      ao.kind = m.kind;
      const AdditiveCorrector corr(setup, ao);
      RuntimeOptions ro;
      ro.mode = m.mode;
      ro.write = m.write;
      ro.rescomp = m.rescomp;
      ro.residual_based = m.residual_based;
      ro.criterion = StopCriterion::kMaster;
      ro.t_max = t_max;
      ro.num_threads = cfg.threads;
      rr = run_shared_memory(corr, b, x, ro);
    }
    secs.push_back(rr.seconds);
    res.push_back(rr.final_rel_res);
    cor.push_back(rr.mean_corrections());
  }
  return {mean(secs), mean(res), mean(cor)};
}

Cell sweep(const MgSetup& setup, const Method& m, const SweepConfig& cfg) {
  int t_max = cfg.step;
  while (t_max <= cfg.max_cycles) {
    const Point p = run_point(setup, m, t_max, cfg);
    if (!std::isfinite(p.rel_res) || p.rel_res > 1e6) {
      return {};  // diverged: dagger
    }
    if (p.rel_res < cfg.tol) {
      return {p.seconds, p.corrects, t_max};
    }
    // Adaptive stepping: fine resolution early (where most methods land),
    // coarser as counts grow (slow smoothers / elasticity).
    if (t_max < 10 * cfg.step) {
      t_max += cfg.step;
    } else if (t_max < 25 * cfg.step) {
      t_max += 2 * cfg.step;
    } else {
      t_max += 5 * cfg.step;
    }
  }
  return {};  // never reached the tolerance within the sweep: dagger
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  SweepConfig cfg;
  cfg.step = static_cast<int>(cli.get_int("step", 5));
  cfg.max_cycles = static_cast<int>(cli.get_int("max-cycles", 300));
  cfg.runs = static_cast<int>(cli.get_int("runs", 2));
  cfg.tol = cli.get_double("tol", 1e-9);
  cfg.threads = static_cast<std::size_t>(cli.get_int("threads", 8));
  // One characteristic size per set: 7pt, 27pt, mfem-laplace,
  // mfem-elasticity.
  const auto sizes = cli.get_int_list("sizes", {12, 12, 10, 10});
  const std::string only_set = cli.get("set", "");
  const std::string csv = cli.get("csv", "");

  const std::vector<TestSet> sets = {TestSet::kFD7pt, TestSet::kFD27pt,
                                     TestSet::kFemLaplace,
                                     TestSet::kFemElasticity};
  const std::vector<SmootherType> smoothers = {
      SmootherType::kWeightedJacobi, SmootherType::kL1Jacobi,
      SmootherType::kHybridJGS, SmootherType::kAsyncGS};

  std::cout << "Table I: time / corrects / V-cycles to rel res < " << cfg.tol
            << ", " << cfg.threads << " threads, Criterion 2, mean of "
            << cfg.runs << " runs (dagger + marks divergence)\n\n";

  Table table({"matrix", "rows", "smoother", "method", "time", "corrects",
               "V-cycles"});

  for (std::size_t si = 0; si < sets.size(); ++si) {
    const TestSet set = sets[si];
    if (!only_set.empty() && test_set_name(set) != only_set) continue;
    const Index n = static_cast<Index>(
        sizes[std::min(si, sizes.size() - 1)]);
    for (SmootherType st : smoothers) {
      Problem prob = make_problem(set, n);
      const Index rows = prob.a.rows();
      // Table I uses two aggressive levels.
      const MgSetup setup(std::move(prob.a),
                          paper_mg_options_for(set, st, 2));
      for (const Method& m : methods()) {
        const Cell cell = sweep(setup, m, cfg);
        table.add_row(
            {test_set_name(set), std::to_string(rows), smoother_name(st),
             m.name,
             cell.time ? Table::fmt(*cell.time, 4) : "+",
             cell.corrects ? Table::fmt(*cell.corrects, 4) : "+",
             cell.vcycles ? std::to_string(*cell.vcycles) : "+"});
      }
      std::cout << "[done] " << test_set_name(set) << " / "
                << smoother_name(st) << "\n";
    }
  }
  std::cout << '\n';
  table.emit(csv);
  std::cout << "\nExpected shape (paper Table I): async Multadd local-res "
               "needs the fewest V-cycles; async GS is the best smoother; "
               "l1-Jacobi AFACx and elasticity global-res cells diverge\n";
  return 0;
}
