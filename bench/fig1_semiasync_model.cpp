// Figure 1: final relative residual 2-norm after 20 V-cycles versus grid
// length for the semi-asynchronous model (Eq. 6), AFACx and Multadd,
// maximum delay 0, minimum update probabilities {.1,.3,.5,.7,.9} plus the
// synchronous reference. 27pt test set, weighted Jacobi (.9), HMIS + one
// aggressive level, classical modified interpolation; each point is the
// mean of `--runs` runs.
//
// Paper scale: --sizes 40,48,56,64,72,80 --runs 20.

#include <iostream>

#include "async/model.hpp"
#include "bench_common.hpp"

using namespace asyncmg;
using namespace asyncmg::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto sizes = cli.get_int_list("sizes", {8, 12, 16, 20});
  const auto alphas = cli.get_double_list("alphas", {0.1, 0.3, 0.5, 0.7, 0.9});
  const int runs = static_cast<int>(cli.get_int("runs", 5));
  const int cycles = static_cast<int>(cli.get_int("cycles", 20));
  const std::string csv = cli.get("csv", "");

  std::cout << "Figure 1: semi-async model, delta=0, 27pt, w-Jacobi(.9), "
            << cycles << " V-cycles, mean of " << runs << " runs\n\n";

  Table table({"method", "grid-length", "rows", "alpha", "rel-res"});

  for (AdditiveKind kind : {AdditiveKind::kAfacx, AdditiveKind::kMultadd}) {
    for (std::int64_t n : sizes) {
      Problem prob = make_problem(TestSet::kFD27pt, static_cast<Index>(n));
      const MgSetup setup(
          std::move(prob.a),
          paper_mg_options(SmootherType::kWeightedJacobi, 0.9, 1));
      AdditiveOptions ao;
      ao.kind = kind;
      const AdditiveCorrector corr(setup, ao);
      const std::size_t rows = static_cast<std::size_t>(setup.a(0).rows());

      // Synchronous reference.
      {
        std::vector<double> finals;
        for (int run = 0; run < runs; ++run) {
          const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
          Vector x(rows, 0.0);
          AdditiveMg mg(setup, ao);
          finals.push_back(mg.solve(b, x, cycles).final_rel_res());
        }
        table.add_row({additive_kind_name(kind), std::to_string(n),
                       std::to_string(rows), "sync",
                       Table::fmt(mean(finals), 4)});
      }

      for (double alpha : alphas) {
        std::vector<double> finals;
        for (int run = 0; run < runs; ++run) {
          const Vector b = paper_rhs(rows, static_cast<std::uint64_t>(run));
          Vector x(rows, 0.0);
          AsyncModelOptions mo;
          mo.kind = AsyncModelKind::kSemiAsync;
          mo.alpha = alpha;
          mo.max_delay = 0;
          mo.updates_per_grid = cycles;
          mo.seed = 1000 + static_cast<std::uint64_t>(run);
          finals.push_back(run_async_model(corr, b, x, mo).final_rel_res);
        }
        table.add_row({additive_kind_name(kind), std::to_string(n),
                       std::to_string(rows), Table::fmt(alpha, 2),
                       Table::fmt(mean(finals), 4)});
      }
    }
  }
  table.emit(csv);
  std::cout << "\nExpected shape (paper Fig. 1): smaller alpha converges "
               "slower, but every curve is flat in the grid length\n";
  return 0;
}
