# Empty dependencies file for elasticity_beam.
# This may be replaced when dependencies are built.
