file(REMOVE_RECURSE
  "CMakeFiles/elasticity_beam.dir/elasticity_beam.cpp.o"
  "CMakeFiles/elasticity_beam.dir/elasticity_beam.cpp.o.d"
  "elasticity_beam"
  "elasticity_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticity_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
