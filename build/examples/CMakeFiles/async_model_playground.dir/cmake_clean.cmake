file(REMOVE_RECURSE
  "CMakeFiles/async_model_playground.dir/async_model_playground.cpp.o"
  "CMakeFiles/async_model_playground.dir/async_model_playground.cpp.o.d"
  "async_model_playground"
  "async_model_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_model_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
