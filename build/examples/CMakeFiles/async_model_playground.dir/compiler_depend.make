# Empty compiler generated dependencies file for async_model_playground.
# This may be replaced when dependencies are built.
