file(REMOVE_RECURSE
  "CMakeFiles/geometric_vs_algebraic.dir/geometric_vs_algebraic.cpp.o"
  "CMakeFiles/geometric_vs_algebraic.dir/geometric_vs_algebraic.cpp.o.d"
  "geometric_vs_algebraic"
  "geometric_vs_algebraic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometric_vs_algebraic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
