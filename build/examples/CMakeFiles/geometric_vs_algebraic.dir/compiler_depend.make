# Empty compiler generated dependencies file for geometric_vs_algebraic.
# This may be replaced when dependencies are built.
