file(REMOVE_RECURSE
  "CMakeFiles/poisson_sphere.dir/poisson_sphere.cpp.o"
  "CMakeFiles/poisson_sphere.dir/poisson_sphere.cpp.o.d"
  "poisson_sphere"
  "poisson_sphere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson_sphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
