# Empty dependencies file for poisson_sphere.
# This may be replaced when dependencies are built.
