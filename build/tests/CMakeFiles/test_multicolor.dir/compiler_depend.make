# Empty compiler generated dependencies file for test_multicolor.
# This may be replaced when dependencies are built.
