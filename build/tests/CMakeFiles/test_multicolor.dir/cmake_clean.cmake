file(REMOVE_RECURSE
  "CMakeFiles/test_multicolor.dir/test_multicolor.cpp.o"
  "CMakeFiles/test_multicolor.dir/test_multicolor.cpp.o.d"
  "test_multicolor"
  "test_multicolor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicolor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
