
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_multigrid.cpp" "tests/CMakeFiles/test_multigrid.dir/test_multigrid.cpp.o" "gcc" "tests/CMakeFiles/test_multigrid.dir/test_multigrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gmg/CMakeFiles/asyncmg_gmg.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/asyncmg_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/asyncmg_async.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/asyncmg_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/multigrid/CMakeFiles/asyncmg_multigrid.dir/DependInfo.cmake"
  "/root/repo/build/src/amg/CMakeFiles/asyncmg_amg.dir/DependInfo.cmake"
  "/root/repo/build/src/smoothers/CMakeFiles/asyncmg_smoothers.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/asyncmg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asyncmg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
