# Empty compiler generated dependencies file for test_async_model.
# This may be replaced when dependencies are built.
