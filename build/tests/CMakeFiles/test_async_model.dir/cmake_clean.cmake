file(REMOVE_RECURSE
  "CMakeFiles/test_async_model.dir/test_async_model.cpp.o"
  "CMakeFiles/test_async_model.dir/test_async_model.cpp.o.d"
  "test_async_model"
  "test_async_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
