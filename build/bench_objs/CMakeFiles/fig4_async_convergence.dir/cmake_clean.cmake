file(REMOVE_RECURSE
  "../bench/fig4_async_convergence"
  "../bench/fig4_async_convergence.pdb"
  "CMakeFiles/fig4_async_convergence.dir/fig4_async_convergence.cpp.o"
  "CMakeFiles/fig4_async_convergence.dir/fig4_async_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_async_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
