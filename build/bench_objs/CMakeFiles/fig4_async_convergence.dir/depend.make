# Empty dependencies file for fig4_async_convergence.
# This may be replaced when dependencies are built.
