# Empty dependencies file for fig2_fullasync_model.
# This may be replaced when dependencies are built.
