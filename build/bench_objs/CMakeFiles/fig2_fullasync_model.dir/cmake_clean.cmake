file(REMOVE_RECURSE
  "../bench/fig2_fullasync_model"
  "../bench/fig2_fullasync_model.pdb"
  "CMakeFiles/fig2_fullasync_model.dir/fig2_fullasync_model.cpp.o"
  "CMakeFiles/fig2_fullasync_model.dir/fig2_fullasync_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fullasync_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
