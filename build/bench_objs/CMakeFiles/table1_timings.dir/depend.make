# Empty dependencies file for table1_timings.
# This may be replaced when dependencies are built.
