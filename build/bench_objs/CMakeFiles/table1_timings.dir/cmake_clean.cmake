file(REMOVE_RECURSE
  "../bench/table1_timings"
  "../bench/table1_timings.pdb"
  "CMakeFiles/table1_timings.dir/table1_timings.cpp.o"
  "CMakeFiles/table1_timings.dir/table1_timings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_timings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
