file(REMOVE_RECURSE
  "../bench/distributed_sim"
  "../bench/distributed_sim.pdb"
  "CMakeFiles/distributed_sim.dir/distributed_sim.cpp.o"
  "CMakeFiles/distributed_sim.dir/distributed_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
