# Empty dependencies file for ablation_amg_options.
# This may be replaced when dependencies are built.
