file(REMOVE_RECURSE
  "../bench/ablation_amg_options"
  "../bench/ablation_amg_options.pdb"
  "CMakeFiles/ablation_amg_options.dir/ablation_amg_options.cpp.o"
  "CMakeFiles/ablation_amg_options.dir/ablation_amg_options.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_amg_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
