file(REMOVE_RECURSE
  "../bench/fig6_thread_scaling"
  "../bench/fig6_thread_scaling.pdb"
  "CMakeFiles/fig6_thread_scaling.dir/fig6_thread_scaling.cpp.o"
  "CMakeFiles/fig6_thread_scaling.dir/fig6_thread_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
