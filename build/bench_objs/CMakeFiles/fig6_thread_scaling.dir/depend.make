# Empty dependencies file for fig6_thread_scaling.
# This may be replaced when dependencies are built.
