file(REMOVE_RECURSE
  "../bench/fig5_mfem_laplace"
  "../bench/fig5_mfem_laplace.pdb"
  "CMakeFiles/fig5_mfem_laplace.dir/fig5_mfem_laplace.cpp.o"
  "CMakeFiles/fig5_mfem_laplace.dir/fig5_mfem_laplace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mfem_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
