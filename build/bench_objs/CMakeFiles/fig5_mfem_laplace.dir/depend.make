# Empty dependencies file for fig5_mfem_laplace.
# This may be replaced when dependencies are built.
