# Empty dependencies file for fig1_semiasync_model.
# This may be replaced when dependencies are built.
