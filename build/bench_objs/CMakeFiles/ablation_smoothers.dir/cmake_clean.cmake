file(REMOVE_RECURSE
  "../bench/ablation_smoothers"
  "../bench/ablation_smoothers.pdb"
  "CMakeFiles/ablation_smoothers.dir/ablation_smoothers.cpp.o"
  "CMakeFiles/ablation_smoothers.dir/ablation_smoothers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smoothers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
