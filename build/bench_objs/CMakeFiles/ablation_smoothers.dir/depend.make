# Empty dependencies file for ablation_smoothers.
# This may be replaced when dependencies are built.
