file(REMOVE_RECURSE
  "libasyncmg_sparse.a"
)
