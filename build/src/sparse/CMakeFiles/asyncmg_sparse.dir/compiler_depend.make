# Empty compiler generated dependencies file for asyncmg_sparse.
# This may be replaced when dependencies are built.
