
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/asyncmg_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/asyncmg_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/sparse/CMakeFiles/asyncmg_sparse.dir/dense.cpp.o" "gcc" "src/sparse/CMakeFiles/asyncmg_sparse.dir/dense.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/sparse/CMakeFiles/asyncmg_sparse.dir/io.cpp.o" "gcc" "src/sparse/CMakeFiles/asyncmg_sparse.dir/io.cpp.o.d"
  "/root/repo/src/sparse/spgemm.cpp" "src/sparse/CMakeFiles/asyncmg_sparse.dir/spgemm.cpp.o" "gcc" "src/sparse/CMakeFiles/asyncmg_sparse.dir/spgemm.cpp.o.d"
  "/root/repo/src/sparse/vec.cpp" "src/sparse/CMakeFiles/asyncmg_sparse.dir/vec.cpp.o" "gcc" "src/sparse/CMakeFiles/asyncmg_sparse.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/asyncmg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
