file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_sparse.dir/csr.cpp.o"
  "CMakeFiles/asyncmg_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/asyncmg_sparse.dir/dense.cpp.o"
  "CMakeFiles/asyncmg_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/asyncmg_sparse.dir/io.cpp.o"
  "CMakeFiles/asyncmg_sparse.dir/io.cpp.o.d"
  "CMakeFiles/asyncmg_sparse.dir/spgemm.cpp.o"
  "CMakeFiles/asyncmg_sparse.dir/spgemm.cpp.o.d"
  "CMakeFiles/asyncmg_sparse.dir/vec.cpp.o"
  "CMakeFiles/asyncmg_sparse.dir/vec.cpp.o.d"
  "libasyncmg_sparse.a"
  "libasyncmg_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
