file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_perfmodel.dir/perfmodel.cpp.o"
  "CMakeFiles/asyncmg_perfmodel.dir/perfmodel.cpp.o.d"
  "libasyncmg_perfmodel.a"
  "libasyncmg_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
