# Empty dependencies file for asyncmg_perfmodel.
# This may be replaced when dependencies are built.
