file(REMOVE_RECURSE
  "libasyncmg_perfmodel.a"
)
