# Empty dependencies file for asyncmg_async.
# This may be replaced when dependencies are built.
