file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_async.dir/distributed.cpp.o"
  "CMakeFiles/asyncmg_async.dir/distributed.cpp.o.d"
  "CMakeFiles/asyncmg_async.dir/model.cpp.o"
  "CMakeFiles/asyncmg_async.dir/model.cpp.o.d"
  "CMakeFiles/asyncmg_async.dir/runtime.cpp.o"
  "CMakeFiles/asyncmg_async.dir/runtime.cpp.o.d"
  "libasyncmg_async.a"
  "libasyncmg_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
