file(REMOVE_RECURSE
  "libasyncmg_async.a"
)
