file(REMOVE_RECURSE
  "libasyncmg_gmg.a"
)
