# Empty compiler generated dependencies file for asyncmg_gmg.
# This may be replaced when dependencies are built.
