file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_gmg.dir/gmg.cpp.o"
  "CMakeFiles/asyncmg_gmg.dir/gmg.cpp.o.d"
  "libasyncmg_gmg.a"
  "libasyncmg_gmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_gmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
