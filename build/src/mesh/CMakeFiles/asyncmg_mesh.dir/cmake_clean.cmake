file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_mesh.dir/fem.cpp.o"
  "CMakeFiles/asyncmg_mesh.dir/fem.cpp.o.d"
  "CMakeFiles/asyncmg_mesh.dir/hex8.cpp.o"
  "CMakeFiles/asyncmg_mesh.dir/hex8.cpp.o.d"
  "CMakeFiles/asyncmg_mesh.dir/stencil.cpp.o"
  "CMakeFiles/asyncmg_mesh.dir/stencil.cpp.o.d"
  "libasyncmg_mesh.a"
  "libasyncmg_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
