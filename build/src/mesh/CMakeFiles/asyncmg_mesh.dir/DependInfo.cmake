
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/fem.cpp" "src/mesh/CMakeFiles/asyncmg_mesh.dir/fem.cpp.o" "gcc" "src/mesh/CMakeFiles/asyncmg_mesh.dir/fem.cpp.o.d"
  "/root/repo/src/mesh/hex8.cpp" "src/mesh/CMakeFiles/asyncmg_mesh.dir/hex8.cpp.o" "gcc" "src/mesh/CMakeFiles/asyncmg_mesh.dir/hex8.cpp.o.d"
  "/root/repo/src/mesh/stencil.cpp" "src/mesh/CMakeFiles/asyncmg_mesh.dir/stencil.cpp.o" "gcc" "src/mesh/CMakeFiles/asyncmg_mesh.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/asyncmg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asyncmg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
