# Empty compiler generated dependencies file for asyncmg_mesh.
# This may be replaced when dependencies are built.
