file(REMOVE_RECURSE
  "libasyncmg_mesh.a"
)
