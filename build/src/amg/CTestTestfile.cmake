# CMake generated Testfile for 
# Source directory: /root/repo/src/amg
# Build directory: /root/repo/build/src/amg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
