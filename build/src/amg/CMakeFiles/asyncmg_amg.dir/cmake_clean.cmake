file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_amg.dir/coarsen.cpp.o"
  "CMakeFiles/asyncmg_amg.dir/coarsen.cpp.o.d"
  "CMakeFiles/asyncmg_amg.dir/hierarchy.cpp.o"
  "CMakeFiles/asyncmg_amg.dir/hierarchy.cpp.o.d"
  "CMakeFiles/asyncmg_amg.dir/interp.cpp.o"
  "CMakeFiles/asyncmg_amg.dir/interp.cpp.o.d"
  "CMakeFiles/asyncmg_amg.dir/serialize.cpp.o"
  "CMakeFiles/asyncmg_amg.dir/serialize.cpp.o.d"
  "CMakeFiles/asyncmg_amg.dir/strength.cpp.o"
  "CMakeFiles/asyncmg_amg.dir/strength.cpp.o.d"
  "libasyncmg_amg.a"
  "libasyncmg_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
