# Empty dependencies file for asyncmg_amg.
# This may be replaced when dependencies are built.
