
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amg/coarsen.cpp" "src/amg/CMakeFiles/asyncmg_amg.dir/coarsen.cpp.o" "gcc" "src/amg/CMakeFiles/asyncmg_amg.dir/coarsen.cpp.o.d"
  "/root/repo/src/amg/hierarchy.cpp" "src/amg/CMakeFiles/asyncmg_amg.dir/hierarchy.cpp.o" "gcc" "src/amg/CMakeFiles/asyncmg_amg.dir/hierarchy.cpp.o.d"
  "/root/repo/src/amg/interp.cpp" "src/amg/CMakeFiles/asyncmg_amg.dir/interp.cpp.o" "gcc" "src/amg/CMakeFiles/asyncmg_amg.dir/interp.cpp.o.d"
  "/root/repo/src/amg/serialize.cpp" "src/amg/CMakeFiles/asyncmg_amg.dir/serialize.cpp.o" "gcc" "src/amg/CMakeFiles/asyncmg_amg.dir/serialize.cpp.o.d"
  "/root/repo/src/amg/strength.cpp" "src/amg/CMakeFiles/asyncmg_amg.dir/strength.cpp.o" "gcc" "src/amg/CMakeFiles/asyncmg_amg.dir/strength.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/asyncmg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asyncmg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
