file(REMOVE_RECURSE
  "libasyncmg_amg.a"
)
