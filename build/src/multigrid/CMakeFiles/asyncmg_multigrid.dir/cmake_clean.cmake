file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_multigrid.dir/additive.cpp.o"
  "CMakeFiles/asyncmg_multigrid.dir/additive.cpp.o.d"
  "CMakeFiles/asyncmg_multigrid.dir/mult.cpp.o"
  "CMakeFiles/asyncmg_multigrid.dir/mult.cpp.o.d"
  "CMakeFiles/asyncmg_multigrid.dir/pcg.cpp.o"
  "CMakeFiles/asyncmg_multigrid.dir/pcg.cpp.o.d"
  "CMakeFiles/asyncmg_multigrid.dir/setup.cpp.o"
  "CMakeFiles/asyncmg_multigrid.dir/setup.cpp.o.d"
  "libasyncmg_multigrid.a"
  "libasyncmg_multigrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_multigrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
