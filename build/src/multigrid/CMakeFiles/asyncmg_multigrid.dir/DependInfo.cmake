
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multigrid/additive.cpp" "src/multigrid/CMakeFiles/asyncmg_multigrid.dir/additive.cpp.o" "gcc" "src/multigrid/CMakeFiles/asyncmg_multigrid.dir/additive.cpp.o.d"
  "/root/repo/src/multigrid/mult.cpp" "src/multigrid/CMakeFiles/asyncmg_multigrid.dir/mult.cpp.o" "gcc" "src/multigrid/CMakeFiles/asyncmg_multigrid.dir/mult.cpp.o.d"
  "/root/repo/src/multigrid/pcg.cpp" "src/multigrid/CMakeFiles/asyncmg_multigrid.dir/pcg.cpp.o" "gcc" "src/multigrid/CMakeFiles/asyncmg_multigrid.dir/pcg.cpp.o.d"
  "/root/repo/src/multigrid/setup.cpp" "src/multigrid/CMakeFiles/asyncmg_multigrid.dir/setup.cpp.o" "gcc" "src/multigrid/CMakeFiles/asyncmg_multigrid.dir/setup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amg/CMakeFiles/asyncmg_amg.dir/DependInfo.cmake"
  "/root/repo/build/src/smoothers/CMakeFiles/asyncmg_smoothers.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/asyncmg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asyncmg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
