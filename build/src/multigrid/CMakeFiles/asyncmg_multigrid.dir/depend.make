# Empty dependencies file for asyncmg_multigrid.
# This may be replaced when dependencies are built.
