file(REMOVE_RECURSE
  "libasyncmg_multigrid.a"
)
