file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_util.dir/cli.cpp.o"
  "CMakeFiles/asyncmg_util.dir/cli.cpp.o.d"
  "CMakeFiles/asyncmg_util.dir/partition.cpp.o"
  "CMakeFiles/asyncmg_util.dir/partition.cpp.o.d"
  "CMakeFiles/asyncmg_util.dir/rng.cpp.o"
  "CMakeFiles/asyncmg_util.dir/rng.cpp.o.d"
  "CMakeFiles/asyncmg_util.dir/stats.cpp.o"
  "CMakeFiles/asyncmg_util.dir/stats.cpp.o.d"
  "CMakeFiles/asyncmg_util.dir/table.cpp.o"
  "CMakeFiles/asyncmg_util.dir/table.cpp.o.d"
  "libasyncmg_util.a"
  "libasyncmg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
