# Empty compiler generated dependencies file for asyncmg_util.
# This may be replaced when dependencies are built.
