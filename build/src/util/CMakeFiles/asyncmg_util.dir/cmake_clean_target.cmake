file(REMOVE_RECURSE
  "libasyncmg_util.a"
)
