
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoothers/multicolor.cpp" "src/smoothers/CMakeFiles/asyncmg_smoothers.dir/multicolor.cpp.o" "gcc" "src/smoothers/CMakeFiles/asyncmg_smoothers.dir/multicolor.cpp.o.d"
  "/root/repo/src/smoothers/smoother.cpp" "src/smoothers/CMakeFiles/asyncmg_smoothers.dir/smoother.cpp.o" "gcc" "src/smoothers/CMakeFiles/asyncmg_smoothers.dir/smoother.cpp.o.d"
  "/root/repo/src/smoothers/spectral.cpp" "src/smoothers/CMakeFiles/asyncmg_smoothers.dir/spectral.cpp.o" "gcc" "src/smoothers/CMakeFiles/asyncmg_smoothers.dir/spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/asyncmg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asyncmg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
