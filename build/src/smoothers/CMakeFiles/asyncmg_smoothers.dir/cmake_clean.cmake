file(REMOVE_RECURSE
  "CMakeFiles/asyncmg_smoothers.dir/multicolor.cpp.o"
  "CMakeFiles/asyncmg_smoothers.dir/multicolor.cpp.o.d"
  "CMakeFiles/asyncmg_smoothers.dir/smoother.cpp.o"
  "CMakeFiles/asyncmg_smoothers.dir/smoother.cpp.o.d"
  "CMakeFiles/asyncmg_smoothers.dir/spectral.cpp.o"
  "CMakeFiles/asyncmg_smoothers.dir/spectral.cpp.o.d"
  "libasyncmg_smoothers.a"
  "libasyncmg_smoothers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmg_smoothers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
