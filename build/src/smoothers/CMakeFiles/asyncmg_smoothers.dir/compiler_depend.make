# Empty compiler generated dependencies file for asyncmg_smoothers.
# This may be replaced when dependencies are built.
