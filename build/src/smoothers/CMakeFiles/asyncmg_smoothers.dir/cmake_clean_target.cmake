file(REMOVE_RECURSE
  "libasyncmg_smoothers.a"
)
